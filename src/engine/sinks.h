#pragma once
/// \file sinks.h
/// \brief Pluggable result sinks for the sweep engine: console table,
///        machine-readable JSON and CSV under bench/results/.
///
/// Sinks receive every measured point in plan order plus begin/end events.
/// File sinks deliberately serialize only the sweep's deterministic content
/// (scenario, seed, stopping rule, per-point results) -- never timings or
/// worker counts -- so a sweep's JSON/CSV is a pure function of
/// (scenario, seed, stop) and byte-identical for any thread count.

#include <cstdio>
#include <string>
#include <vector>

#include "engine/scenario_registry.h"
#include "obs/profile.h"
#include "sim/ber_simulator.h"

namespace uwb::engine {

/// Sweep-level metadata handed to sinks.
struct SweepInfo {
  std::string scenario;
  uint64_t seed = 0;
  sim::BerStop stop;
  std::size_t num_points = 0;
};

/// One measured grid point.
struct PointRecord {
  std::size_t index = 0;  ///< position in the flat trial plan
  PointSpec spec;         ///< the point that was run (labels, tags, configs)
  sim::BerPoint ber;
  sim::MetricSet metrics;  ///< per-metric count/sum/sum_sq reductions
  double elapsed_s = 0.0;  ///< wall-clock for this point (console only)

  /// Per-point stage profile (empty unless the sweep ran with a
  /// StageProfiler). Observer data: file sinks never serialize it -- it
  /// lands in the run manifest sidecar instead (obs/manifest.h).
  obs::StageTable stages;
};

/// Interface. Methods are invoked from the sweep's calling thread, in plan
/// order; implementations need no locking.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin(const SweepInfo& info) { (void)info; }
  virtual void point(const PointRecord& record) = 0;
  virtual void end(const SweepInfo& info) { (void)info; }
};

/// Buffers rows and prints a sim::Table at end(): one column per axis tag,
/// then BER, ci95, errors, bits, trials, one mean column per recorded
/// metric, and per-point wall-clock.
class ConsoleTableSink : public ResultSink {
 public:
  explicit ConsoleTableSink(std::FILE* out = stdout);

  void begin(const SweepInfo& info) override;
  void point(const PointRecord& record) override;
  void end(const SweepInfo& info) override;

 private:
  std::FILE* out_;
  std::vector<PointRecord> records_;
};

/// Writes one JSON document at end(). Parent directories are created.
class JsonSink : public ResultSink {
 public:
  explicit JsonSink(std::string path);

  void point(const PointRecord& record) override;
  void end(const SweepInfo& info) override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::vector<PointRecord> records_;
};

/// Writes a CSV (header + one row per point) at end().
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::string path);

  void point(const PointRecord& record) override;
  void end(const SweepInfo& info) override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::vector<PointRecord> records_;
};

/// Conventional output path for a scenario: "bench/results/<name>.<ext>"
/// relative to the working directory.
std::string default_result_path(const std::string& scenario_name, const std::string& ext);

}  // namespace uwb::engine
