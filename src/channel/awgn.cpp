#include "channel/awgn.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::channel {

void add_awgn(CplxVec& x, double n0, Rng& rng) {
  detail::require(n0 >= 0.0, "add_awgn: N0 must be non-negative");
  if (n0 == 0.0) return;
  for (auto& v : x) v += rng.cgaussian(n0);
}

void add_awgn(RealVec& x, double n0, Rng& rng) {
  detail::require(n0 >= 0.0, "add_awgn: N0 must be non-negative");
  if (n0 == 0.0) return;
  const double sigma = std::sqrt(n0 / 2.0);
  for (auto& v : x) v += rng.gaussian(0.0, sigma);
}

void add_awgn(CplxWaveform& x, double n0, Rng& rng) { add_awgn(x.samples(), n0, rng); }

void add_awgn(RealWaveform& x, double n0, Rng& rng) { add_awgn(x.samples(), n0, rng); }

double n0_for_ebn0(double eb, double ebn0_db) {
  detail::require(eb > 0.0, "n0_for_ebn0: Eb must be positive");
  return eb / from_db(ebn0_db);
}

double energy_per_bit(const CplxWaveform& x, std::size_t num_bits) {
  detail::require(num_bits > 0, "energy_per_bit: num_bits must be positive");
  return x.total_energy() / static_cast<double>(num_bits);
}

double energy_per_bit(const RealWaveform& x, std::size_t num_bits) {
  detail::require(num_bits > 0, "energy_per_bit: num_bits must be positive");
  return x.total_energy() / static_cast<double>(num_bits);
}

}  // namespace uwb::channel
