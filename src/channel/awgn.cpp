#include "channel/awgn.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>

#include "common/error.h"
#include "common/math_utils.h"
#include "obs/profile.h"

namespace uwb::channel {

namespace {

// ---- Ziggurat standard-normal sampler -------------------------------------
//
// Noise synthesis is the largest per-packet cost that is not a convolution:
// a gen-1 packet adds noise over millions of oversampled "analog" samples,
// and std::normal_distribution (Marsaglia polar) spends ~25 ns per draw in
// log/sqrt and rejection retries. The 256-layer ziggurat (Marsaglia & Tsang
// 2000) accepts ~98.8% of draws with one engine call, one table lookup and
// one compare -- same exact N(0,1) law, ~5x faster.
//
// Draws here consume the same mt19937_64 engine as Rng::gaussian but with a
// different consumption pattern, so AWGN realizations differ from the polar
// sampler's; every draw is still a pure function of the trial's forked seed,
// which is all the engine's byte-identity guarantees require. Rng::gaussian
// itself is untouched: channel realizations, jitter and converter mismatch
// keep their exact historical streams.

constexpr int kZigLayers = 256;
constexpr double kZigR = 3.6541528853610088;      // base-layer right edge
constexpr double kZigArea = 0.00492867323399;     // per-layer area

struct ZigguratTables {
  double x[kZigLayers + 1];  // layer right edges, decreasing; x[256] = 0
  double y[kZigLayers + 1];  // f(x[i]) = exp(-x[i]^2/2), increasing

  ZigguratTables() {
    x[0] = kZigArea * std::exp(0.5 * kZigR * kZigR);  // v / f(r)
    x[1] = kZigR;
    for (int i = 1; i < kZigLayers; ++i) {
      const double fx = std::exp(-0.5 * x[i] * x[i]);
      x[i + 1] = std::sqrt(-2.0 * std::log(kZigArea / x[i] + fx));
    }
    x[kZigLayers] = 0.0;
    for (int i = 0; i <= kZigLayers; ++i) y[i] = std::exp(-0.5 * x[i] * x[i]);
  }
};

const ZigguratTables& zig_tables() {
  static const ZigguratTables tables;
  return tables;
}

inline double uniform01(std::mt19937_64& eng) {
  return static_cast<double>(eng() >> 11) * 0x1.0p-53;
}

/// One standard-normal draw. Hot path: single engine call, layer index from
/// the low 8 bits, sign from bit 8, a 52-bit mantissa as the in-layer
/// uniform, and one compare against the next layer's edge.
double zig_normal(std::mt19937_64& eng, const ZigguratTables& t) {
  while (true) {
    const std::uint64_t u = eng();
    const int i = static_cast<int>(u & 255u);
    const double sign = (u & 256u) != 0 ? -1.0 : 1.0;
    const double ux = static_cast<double>(u >> 12) * 0x1.0p-52;
    const double cand = ux * t.x[i];
    if (cand < t.x[i + 1]) return sign * cand;
    if (i == 0) {
      // Tail beyond r (Marsaglia's exponential-majorant method).
      double xt;
      double yt;
      do {
        xt = -std::log(1.0 - uniform01(eng)) / kZigR;
        yt = -std::log(1.0 - uniform01(eng));
      } while (yt + yt < xt * xt);
      return sign * (kZigR + xt);
    }
    // Wedge between layer edges: accept iff the point lands under the pdf.
    const double yr = t.y[i] + uniform01(eng) * (t.y[i + 1] - t.y[i]);
    if (yr < std::exp(-0.5 * cand * cand)) return sign * cand;
  }
}

// ---- Single-precision ziggurat on a xoshiro256++ stream -------------------
//
// The float arena's noise budget is dominated by the uniform generator:
// mt19937_64 costs ~6 ns per 64-bit draw, which caps even a free normal
// sampler near the old path's cost. xoshiro256++ generates a 64-bit word in
// ~1 ns, and each word feeds TWO float ziggurat draws (32 bits each: 8-bit
// layer index, sign bit, 23-bit in-layer mantissa). Seeded per call from one
// mt19937_64 draw, the stream is a pure function of the trial seed.

struct Xoshiro256pp {
  std::uint64_t s[4];

  explicit Xoshiro256pp(std::uint64_t seed) {
    // SplitMix64 expansion of the single seed word (the reference method).
    std::uint64_t z = seed;
    for (auto& w : s) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      w = t ^ (t >> 31);
    }
  }

  static std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s[0] + s[3], 23) + s[0];
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
  }
};

struct ZigguratTablesF {
  float x[kZigLayers + 1];
  float y[kZigLayers + 1];

  ZigguratTablesF() {
    const ZigguratTables& d = zig_tables();
    for (int i = 0; i <= kZigLayers; ++i) {
      x[i] = static_cast<float>(d.x[i]);
      y[i] = static_cast<float>(d.y[i]);
    }
  }
};

const ZigguratTablesF& zig_tables_f() {
  static const ZigguratTablesF tables;
  return tables;
}

/// Rejection continuation for a 32-bit draw that missed the in-layer accept
/// (~1.5% of draws). Out of line on purpose: the hot loop then carries only
/// the one-compare fast path. Fresh uniforms come from whole engine words --
/// the wedge burns the low 32 bits of one, the base-layer tail runs
/// Marsaglia's double-precision exponential method on 53-bit uniforms.
[[gnu::noinline]] float zig_slow_f(std::uint32_t u, Xoshiro256pp& eng,
                                   const ZigguratTablesF& t) {
  while (true) {
    const int i = static_cast<int>(u & 255u);
    const float sign = (u & 256u) != 0 ? -1.0f : 1.0f;
    const float ux = static_cast<float>(u >> 9) * 0x1.0p-23f;
    const float cand = ux * t.x[i];
    if (i == 0) {
      double xt;
      double yt;
      do {
        const double u1 = static_cast<double>(eng.next() >> 11) * 0x1.0p-53;
        const double u2 = static_cast<double>(eng.next() >> 11) * 0x1.0p-53;
        xt = -std::log(1.0 - u1) / kZigR;
        yt = -std::log(1.0 - u2);
      } while (yt + yt < xt * xt);
      return sign * static_cast<float>(kZigR + xt);
    }
    const float uy = static_cast<float>(static_cast<std::uint32_t>(eng.next())) * 0x1.0p-32f;
    const float yr = t.y[i] + uy * (t.y[i + 1] - t.y[i]);
    if (yr < std::exp(-0.5f * cand * cand)) return sign * cand;
    // Wedge miss: restart from a fresh 32-bit draw.
    u = static_cast<std::uint32_t>(eng.next());
    const int j = static_cast<int>(u & 255u);
    const float c2 = static_cast<float>(u >> 9) * 0x1.0p-23f * t.x[j];
    if (c2 < t.x[j + 1]) return ((u & 256u) != 0 ? -1.0f : 1.0f) * c2;
  }
}

/// Inline fast path: one compare; sign applied by flipping the float's top
/// bit so the accepted branch is branch-free.
inline float zig_one_f(std::uint32_t u, Xoshiro256pp& eng, const ZigguratTablesF& t) {
  const int i = static_cast<int>(u & 255u);
  const float cand = static_cast<float>(u >> 9) * 0x1.0p-23f * t.x[i];
  if (cand < t.x[i + 1]) [[likely]] {
    const std::uint32_t bits =
        std::bit_cast<std::uint32_t>(cand) | ((u & 256u) << 23);
    return std::bit_cast<float>(bits);
  }
  return zig_slow_f(u, eng, t);
}

}  // namespace

void add_awgn(float* x, std::size_t n, double n0, Rng& rng) {
  detail::require(n0 >= 0.0, "add_awgn: N0 must be non-negative");
  if (n0 == 0.0 || n == 0) return;
  const obs::StageTimer timer(obs::Stage::kChannelNoise, n);
  const auto sigma = static_cast<float>(std::sqrt(n0 / 2.0));
  const ZigguratTablesF& t = zig_tables_f();
  Xoshiro256pp eng(rng.engine()());
  std::size_t i = 0;
  // Two draws per engine word: low half then high half.
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t w = eng.next();
    x[i] += sigma * zig_one_f(static_cast<std::uint32_t>(w), eng, t);
    x[i + 1] += sigma * zig_one_f(static_cast<std::uint32_t>(w >> 32), eng, t);
  }
  if (i < n) {
    x[i] += sigma *
            zig_one_f(static_cast<std::uint32_t>(eng.next()), eng, t);
  }
}

void add_awgn(CplxVec& x, double n0, Rng& rng) {
  detail::require(n0 >= 0.0, "add_awgn: N0 must be non-negative");
  if (n0 == 0.0) return;
  const obs::StageTimer timer(obs::Stage::kChannelNoise, x.size());
  const double sigma = std::sqrt(n0 / 2.0);
  const ZigguratTables& t = zig_tables();
  std::mt19937_64& eng = rng.engine();
  for (auto& v : x) {
    const double re = sigma * zig_normal(eng, t);
    const double im = sigma * zig_normal(eng, t);
    v += cplx{re, im};
  }
}

void add_awgn(RealVec& x, double n0, Rng& rng) {
  detail::require(n0 >= 0.0, "add_awgn: N0 must be non-negative");
  if (n0 == 0.0) return;
  const obs::StageTimer timer(obs::Stage::kChannelNoise, x.size());
  const double sigma = std::sqrt(n0 / 2.0);
  const ZigguratTables& t = zig_tables();
  std::mt19937_64& eng = rng.engine();
  for (auto& v : x) v += sigma * zig_normal(eng, t);
}

void add_awgn(CplxWaveform& x, double n0, Rng& rng) { add_awgn(x.samples(), n0, rng); }

void add_awgn(RealWaveform& x, double n0, Rng& rng) { add_awgn(x.samples(), n0, rng); }

double n0_for_ebn0(double eb, double ebn0_db) {
  detail::require(eb > 0.0, "n0_for_ebn0: Eb must be positive");
  return eb / from_db(ebn0_db);
}

double energy_per_bit(const CplxWaveform& x, std::size_t num_bits) {
  detail::require(num_bits > 0, "energy_per_bit: num_bits must be positive");
  return x.total_energy() / static_cast<double>(num_bits);
}

double energy_per_bit(const RealWaveform& x, std::size_t num_bits) {
  detail::require(num_bits > 0, "energy_per_bit: num_bits must be positive");
  return x.total_energy() / static_cast<double>(num_bits);
}

}  // namespace uwb::channel
