#include "channel/antenna.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/fft.h"
#include "dsp/filter_design.h"
#include "dsp/fir_filter.h"

namespace uwb::channel {

AntennaModel::AntennaModel(const AntennaParams& params, double fs) : params_(params), fs_(fs) {
  detail::require(fs > 2.0 * params.high_edge_hz,
                  "AntennaModel: sample rate must exceed twice the upper band edge");
  detail::require(params.low_edge_hz > 0.0 && params.high_edge_hz > params.low_edge_hz,
                  "AntennaModel: band edges must satisfy 0 < low < high");

  // Start from a bandpass covering the antenna's band.
  taps_ = dsp::design_bandpass(params.low_edge_hz, params.high_edge_hz, fs, params.num_taps,
                               dsp::WindowType::kBlackman);

  if (params.differentiate) {
    // Small-antenna radiation differentiates the drive current; cascade a
    // first-difference (discrete d/dt) and renormalize mid-band gain to 1.
    RealVec diffed(taps_.size() + 1, 0.0);
    for (std::size_t i = 0; i < taps_.size(); ++i) {
      diffed[i] += taps_[i];
      diffed[i + 1] -= taps_[i];
    }
    taps_ = std::move(diffed);
  }

  if (params.ripple_db > 0.0 && params.ripple_cycles > 0) {
    // Multiply the frequency response by a gentle cosine ripple across the
    // band (resonance structure of a compact planar element), via
    // frequency-domain reshaping of the tap vector.
    const std::size_t n = next_pow2(taps_.size() * 4);
    CplxVec spec = dsp::fft(taps_, n);
    for (std::size_t k = 0; k < n; ++k) {
      const double f = std::abs(dsp::bin_frequency(k, n, fs_));
      if (f >= params_.low_edge_hz && f <= params_.high_edge_hz) {
        const double frac =
            (f - params_.low_edge_hz) / (params_.high_edge_hz - params_.low_edge_hz);
        const double ripple_db_here =
            params_.ripple_db * 0.5 * std::cos(two_pi * params_.ripple_cycles * frac);
        spec[k] *= db_to_amp(ripple_db_here);
      }
    }
    CplxVec time = dsp::ifft(spec);
    taps_.assign(taps_.size(), 0.0);
    for (std::size_t i = 0; i < taps_.size(); ++i) taps_[i] = time[i].real();
  }

  // Normalize mid-band gain to unity.
  const double f_mid = 0.5 * (params_.low_edge_hz + params_.high_edge_hz);
  const double g = std::abs(dsp::fir_response_at(taps_, f_mid, fs_));
  detail::require(g > 1e-9, "AntennaModel: degenerate response");
  for (auto& v : taps_) v /= g;
}

RealWaveform AntennaModel::apply(const RealWaveform& x) const {
  detail::require(x.sample_rate() == fs_, "AntennaModel::apply: sample-rate mismatch");
  return dsp::filter_same(x, taps_);
}

double AntennaModel::gain_db_at(double freq_hz) const {
  return dsp::fir_gain_db_at(taps_, freq_hz, fs_);
}

}  // namespace uwb::channel
