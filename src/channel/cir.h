#pragma once
/// \file cir.h
/// \brief Channel impulse response: a tapped delay line with complex gains.
///        The object the paper's back end estimates ("channel impulse
///        response ... estimated with a precision of up to four bits") and
///        the RAKE / Viterbi demodulator consume.

#include <cstddef>

#include "common/types.h"
#include "common/waveform.h"

namespace uwb::channel {

/// One multipath component.
struct CirTap {
  double delay_s = 0.0;
  cplx gain{1.0, 0.0};

  [[nodiscard]] bool operator==(const CirTap&) const = default;
};

/// A multipath channel impulse response at complex baseband.
class Cir {
 public:
  Cir() = default;
  explicit Cir(std::vector<CirTap> taps);

  [[nodiscard]] const std::vector<CirTap>& taps() const noexcept { return taps_; }
  [[nodiscard]] std::size_t num_taps() const noexcept { return taps_.size(); }
  [[nodiscard]] bool empty() const noexcept { return taps_.empty(); }

  /// Total energy sum |g_k|^2.
  [[nodiscard]] double total_energy() const noexcept;

  /// Energy-weighted mean excess delay.
  [[nodiscard]] double mean_excess_delay() const noexcept;

  /// RMS delay spread (the paper quotes ~20 ns for the target channels).
  [[nodiscard]] double rms_delay_spread() const noexcept;

  /// Largest tap delay.
  [[nodiscard]] double max_delay() const noexcept;

  /// Scales all gains so total_energy() == 1 (lossless-channel convention
  /// for BER experiments; path loss handled separately).
  Cir& normalize_energy();

  /// Drops taps below \p threshold_db relative to the strongest tap.
  [[nodiscard]] Cir truncated(double threshold_db) const;

  /// Keeps only the \p count strongest taps (selective-RAKE style view).
  [[nodiscard]] Cir strongest(std::size_t count) const;

  /// Fraction of total energy captured by the \p count strongest taps.
  [[nodiscard]] double energy_capture(std::size_t count) const;

  /// Discretizes to a sample-spaced FIR at \p fs: taps accumulate into the
  /// nearest sample bin. Length covers max_delay() (at least one tap).
  [[nodiscard]] CplxVec sampled(double fs) const;

  /// Applies the channel to a complex baseband waveform (linear convolution;
  /// output longer by the channel length).
  [[nodiscard]] CplxWaveform apply(const CplxWaveform& x) const;

  /// Applies to a real passband waveform using only the real part of each
  /// gain (for passband demos; baseband sims use the complex path).
  [[nodiscard]] RealWaveform apply_real(const RealWaveform& x) const;

 private:
  std::vector<CirTap> taps_;
};

/// The ideal single-tap channel (for AWGN-only reference runs).
Cir identity_cir();

}  // namespace uwb::channel
