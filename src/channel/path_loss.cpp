#include "channel/path_loss.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::channel {

namespace {
constexpr double c_mps = 299792458.0;
}

double free_space_path_loss_db(double d_m, double f_hz) {
  detail::require(d_m > 0.0 && f_hz > 0.0, "free_space_path_loss_db: args must be positive");
  return 20.0 * std::log10(4.0 * pi * d_m * f_hz / c_mps);
}

double log_distance_path_loss_db(double d_m, double f_hz, double exponent, double d0_m) {
  detail::require(d_m >= d0_m, "log_distance_path_loss_db: d must be >= d0");
  return free_space_path_loss_db(d0_m, f_hz) + 10.0 * exponent * std::log10(d_m / d0_m);
}

double fcc_limited_tx_power_dbm(double bandwidth_hz) {
  detail::require(bandwidth_hz > 0.0, "fcc_limited_tx_power_dbm: bandwidth must be positive");
  return fcc_eirp_limit_dbm_per_mhz + 10.0 * std::log10(bandwidth_hz / 1e6);
}

double LinkBudget::rx_power_dbm() const {
  const double pl =
      log_distance_path_loss_db(distance_m, center_freq_hz, path_loss_exponent);
  return tx_power_dbm + tx_antenna_gain_db + rx_antenna_gain_db - pl;
}

double LinkBudget::noise_power_dbm() const {
  return kT_dBm_per_Hz + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double LinkBudget::snr_db() const { return rx_power_dbm() - noise_power_dbm(); }

double LinkBudget::ebn0_db() const {
  return snr_db() + 10.0 * std::log10(bandwidth_hz / bit_rate_hz) - implementation_loss_db;
}

double LinkBudget::max_distance_m(double required_ebn0_db) const {
  LinkBudget probe = *this;
  double lo = 1.0, hi = 1000.0;  // d0 of the log-distance model is 1 m
  probe.distance_m = lo;
  if (probe.ebn0_db() < required_ebn0_db) return 0.0;  // infeasible even up close
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    probe.distance_m = mid;
    if (probe.ebn0_db() >= required_ebn0_db) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace uwb::channel
