#pragma once
/// \file awgn.h
/// \brief Additive white Gaussian noise with the library's discrete-domain
///        Eb/N0 convention.
///
/// Convention (documented once, used everywhere): energies are discrete
/// sums, Eb = sum |x[n]|^2 over one bit's samples. Complex noise has total
/// per-sample variance N0 (N0/2 per rail); real noise has per-sample
/// variance N0/2. A unit-energy matched filter then sees noise variance
/// N0/2 on its decision rail and BER_BPSK = Q(sqrt(2 Eb/N0)), matching the
/// textbook curves the benches compare against.

#include "common/rng.h"
#include "common/types.h"
#include "common/waveform.h"

namespace uwb::channel {

/// Adds complex AWGN with total per-sample variance \p n0 in place.
void add_awgn(CplxVec& x, double n0, Rng& rng);

/// Adds real AWGN with per-sample variance n0/2 in place.
void add_awgn(RealVec& x, double n0, Rng& rng);

/// Single-precision AWGN over a raw buffer -- the gen-1 float sample arena's
/// noise path. Runs a float ziggurat on a xoshiro256++ stream seeded by one
/// draw from \p rng's engine, so each trial's noise stays a pure function of
/// its forked seed (the determinism contract); realizations differ from the
/// double overload's at the sampler level, not just in rounding.
void add_awgn(float* x, std::size_t n, double n0, Rng& rng);

/// Waveform overloads.
void add_awgn(CplxWaveform& x, double n0, Rng& rng);
void add_awgn(RealWaveform& x, double n0, Rng& rng);

/// N0 that realizes \p ebn0_db for a signal with discrete energy-per-bit
/// \p eb (sum |x|^2 per bit).
double n0_for_ebn0(double eb, double ebn0_db);

/// Discrete energy per bit of a waveform carrying \p num_bits bits.
double energy_per_bit(const CplxWaveform& x, std::size_t num_bits);
double energy_per_bit(const RealWaveform& x, std::size_t num_bits);

}  // namespace uwb::channel
