#include "channel/interferer.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::channel {

Interferer::Interferer(InterfererSpec spec) : spec_(spec) {
  detail::require(spec.power >= 0.0, "Interferer: power must be non-negative");
  detail::require(spec.mod_rate_hz > 0.0, "Interferer: mod rate must be positive");
}

CplxVec Interferer::generate(std::size_t n, double fs, Rng& rng) const {
  detail::require(std::abs(spec_.freq_offset_hz) < fs / 2.0,
                  "Interferer: frequency offset outside Nyquist band");
  CplxVec out(n);
  const double amp = std::sqrt(spec_.power);
  double phase = spec_.initial_phase_rad;
  double freq = spec_.freq_offset_hz;

  switch (spec_.kind) {
    case InterfererKind::kCw: {
      const double step = two_pi * freq / fs;
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = std::polar(amp, phase);
        phase = wrap_phase(phase + step);
      }
      break;
    }
    case InterfererKind::kModulated: {
      const auto samples_per_symbol =
          std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(fs / spec_.mod_rate_hz)));
      const double step = two_pi * freq / fs;
      double symbol = rng.sign();
      for (std::size_t i = 0; i < n; ++i) {
        if (i % samples_per_symbol == 0) symbol = rng.sign();
        out[i] = std::polar(amp, phase) * symbol;
        phase = wrap_phase(phase + step);
      }
      break;
    }
    case InterfererKind::kSweptTone: {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = std::polar(amp, phase);
        phase = wrap_phase(phase + two_pi * freq / fs);
        freq += spec_.sweep_rate_hz_per_s / fs;
        // Reflect at the Nyquist edges to stay representable.
        if (std::abs(freq) >= 0.49 * fs) freq = -freq;
      }
      break;
    }
  }
  return out;
}

void Interferer::add_to(CplxWaveform& x, double signal_power, double sir_db, Rng& rng) const {
  detail::require(signal_power > 0.0, "Interferer::add_to: signal power must be positive");
  InterfererSpec scaled = spec_;
  scaled.power = signal_power / from_db(sir_db);
  const Interferer temp(scaled);
  const CplxVec i_samples = temp.generate(x.size(), x.sample_rate(), rng);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += i_samples[i];
}

void Interferer::add_to(CplxWaveform& x, Rng& rng) const {
  const CplxVec i_samples = generate(x.size(), x.sample_rate(), rng);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += i_samples[i];
}

void add_cw_interferer(CplxWaveform& x, double freq_offset_hz, double signal_power,
                       double sir_db, Rng& rng) {
  InterfererSpec spec;
  spec.kind = InterfererKind::kCw;
  spec.freq_offset_hz = freq_offset_hz;
  spec.initial_phase_rad = rng.uniform(0.0, two_pi);
  Interferer intf(spec);
  intf.add_to(x, signal_power, sir_db, rng);
}

}  // namespace uwb::channel
