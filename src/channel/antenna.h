#pragma once
/// \file antenna.h
/// \brief Behavioral model of the paper's electrically small planar
///        elliptical antenna (Fig. 2, ref [3]): a band-limited
///        differentiating linear filter whose impulse response adds to the
///        channel's, exactly the system-level effect Section 1 highlights.

#include "common/types.h"
#include "common/waveform.h"

namespace uwb::channel {

/// Antenna model parameters.
struct AntennaParams {
  double low_edge_hz = fcc_band_low_hz;    ///< 3 dB band start
  double high_edge_hz = fcc_band_high_hz;  ///< 3 dB band end
  double ripple_db = 1.5;                  ///< in-band gain ripple amplitude
  int ripple_cycles = 5;                   ///< ripple periods across the band
  std::size_t num_taps = 129;              ///< FIR length of the model
  bool differentiate = true;               ///< radiate d/dt (TX antenna physics)
};

/// Linear-filter antenna model for real passband waveforms.
class AntennaModel {
 public:
  explicit AntennaModel(const AntennaParams& params, double fs);

  [[nodiscard]] const AntennaParams& params() const noexcept { return params_; }

  /// The model's FIR impulse response at the construction sample rate.
  [[nodiscard]] const RealVec& impulse_response() const noexcept { return taps_; }

  /// Applies the antenna to a passband waveform (same-mode convolution).
  [[nodiscard]] RealWaveform apply(const RealWaveform& x) const;

  /// Gain (dB) of the model at \p freq_hz (for verification).
  [[nodiscard]] double gain_db_at(double freq_hz) const;

 private:
  AntennaParams params_;
  double fs_;
  RealVec taps_;
};

}  // namespace uwb::channel
