#include "channel/saleh_valenzuela.h"

#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"

namespace uwb::channel {

SvParams cm1() {
  SvParams p;
  p.name = "CM1";
  p.cluster_rate_per_s = 0.0233e9;
  p.ray_rate_per_s = 2.5e9;
  p.cluster_decay_s = 7.1e-9;
  p.ray_decay_s = 4.3e-9;
  p.max_excess_delay_s = 100e-9;
  return p;
}

SvParams cm2() {
  SvParams p;
  p.name = "CM2";
  p.cluster_rate_per_s = 0.4e9;
  p.ray_rate_per_s = 0.5e9;
  p.cluster_decay_s = 5.5e-9;
  p.ray_decay_s = 6.7e-9;
  p.max_excess_delay_s = 120e-9;
  return p;
}

SvParams cm3() {
  SvParams p;
  p.name = "CM3";
  p.cluster_rate_per_s = 0.0667e9;
  p.ray_rate_per_s = 2.1e9;
  p.cluster_decay_s = 14.0e-9;
  p.ray_decay_s = 7.9e-9;
  p.max_excess_delay_s = 200e-9;
  return p;
}

SvParams cm4() {
  SvParams p;
  p.name = "CM4";
  p.cluster_rate_per_s = 0.0667e9;
  p.ray_rate_per_s = 2.1e9;
  p.cluster_decay_s = 24.0e-9;
  p.ray_decay_s = 12.0e-9;
  p.max_excess_delay_s = 300e-9;
  return p;
}

SvParams cm_by_index(int cm) {
  switch (cm) {
    case 1: return cm1();
    case 2: return cm2();
    case 3: return cm3();
    case 4: return cm4();
    default: throw InvalidArgument("cm_by_index: index must be 1..4");
  }
}

SalehValenzuela::SalehValenzuela(SvParams params) : params_(std::move(params)) {
  detail::require(params_.cluster_rate_per_s > 0.0 && params_.ray_rate_per_s > 0.0,
                  "SalehValenzuela: arrival rates must be positive");
  detail::require(params_.cluster_decay_s > 0.0 && params_.ray_decay_s > 0.0,
                  "SalehValenzuela: decay constants must be positive");
}

Cir SalehValenzuela::realize(Rng& rng, bool apply_shadowing) const {
  const SvParams& p = params_;
  std::vector<CirTap> taps;

  // Lognormal per-tap fading: combined sigma of the cluster and ray terms.
  const double sigma_db =
      std::sqrt(p.cluster_fading_db * p.cluster_fading_db + p.ray_fading_db * p.ray_fading_db);
  // Mean-power correction: for n ~ N(mu, sigma^2) in dB the linear power
  // 10^(n/10) has mean 10^(mu/10) exp((sigma ln10/10)^2 / 2); choosing
  // mu = -sigma^2 ln(10)/20 makes that mean exactly 1.
  const double mean_correction_db = -sigma_db * sigma_db * std::log(10.0) / 20.0;

  // First cluster at t = 0 (standard 802.15.3a convention).
  double cluster_time = 0.0;
  while (cluster_time < p.max_excess_delay_s) {
    // First ray of the cluster arrives with the cluster.
    double ray_time = 0.0;
    while (cluster_time + ray_time < p.max_excess_delay_s) {
      // Mean power of this ray (relative, normalized later).
      const double mean_power_lin =
          std::exp(-cluster_time / p.cluster_decay_s) * std::exp(-ray_time / p.ray_decay_s);
      // Lognormal amplitude around the mean power.
      const double n_db = rng.gaussian(0.0, sigma_db);
      const double power = mean_power_lin * std::pow(10.0, (n_db + mean_correction_db) / 10.0);
      const double amp = std::sqrt(power);

      cplx gain;
      if (p.complex_phases) {
        gain = std::polar(amp, rng.uniform(0.0, two_pi));
      } else {
        gain = cplx(amp * rng.sign(), 0.0);
      }
      taps.push_back(CirTap{cluster_time + ray_time, gain});

      ray_time += rng.exponential(1.0 / p.ray_rate_per_s);
    }
    cluster_time += rng.exponential(1.0 / p.cluster_rate_per_s);
  }

  if (taps.empty()) {
    taps.push_back(CirTap{0.0, cplx{1.0, 0.0}});
  }

  Cir cir(std::move(taps));
  cir.normalize_energy();

  if (apply_shadowing) {
    const double x_db = rng.gaussian(0.0, p.shadowing_db);
    const double g = std::pow(10.0, x_db / 20.0);
    std::vector<CirTap> shadowed = cir.taps();
    for (auto& t : shadowed) t.gain *= g;
    cir = Cir(std::move(shadowed));
  }
  return cir;
}

double SalehValenzuela::average_rms_delay_spread(Rng& rng, int count) const {
  detail::require(count > 0, "average_rms_delay_spread: count must be positive");
  double acc = 0.0;
  for (int i = 0; i < count; ++i) acc += realize(rng).rms_delay_spread();
  return acc / count;
}

}  // namespace uwb::channel
