#pragma once
/// \file path_loss.h
/// \brief Free-space and log-distance path loss plus the link budget that
///        connects the FCC-limited TX power to a receiver Eb/N0 -- the
///        arithmetic behind "high data rates over short distances".

#include "common/types.h"

namespace uwb::channel {

/// Free-space path loss (dB) at distance \p d_m and frequency \p f_hz.
double free_space_path_loss_db(double d_m, double f_hz);

/// Log-distance model: FSPL(d0) + 10 n log10(d/d0). Indoor UWB typically
/// n ~ 1.7 (LOS) to 3.5 (NLOS).
double log_distance_path_loss_db(double d_m, double f_hz, double exponent,
                                 double d0_m = 1.0);

/// End-to-end link budget for a UWB link.
struct LinkBudget {
  double tx_power_dbm = -10.2;    ///< FCC limit over ~500 MHz (-41.3 + 10log10(500))
  double tx_antenna_gain_db = 0.0;
  double rx_antenna_gain_db = 0.0;
  double center_freq_hz = 4e9;
  double distance_m = 4.0;
  double path_loss_exponent = 2.0;
  double noise_figure_db = 7.0;   ///< cascaded receiver NF
  double implementation_loss_db = 3.0;
  double bandwidth_hz = 500e6;
  double bit_rate_hz = 100e6;

  /// Received signal power [dBm].
  [[nodiscard]] double rx_power_dbm() const;

  /// Noise power over the signal bandwidth [dBm].
  [[nodiscard]] double noise_power_dbm() const;

  /// SNR over the signal bandwidth [dB].
  [[nodiscard]] double snr_db() const;

  /// Eb/N0 [dB] = SNR + 10 log10(B / Rb) - implementation loss.
  [[nodiscard]] double ebn0_db() const;

  /// Maximum distance at which \p required_ebn0_db is met (bisection).
  [[nodiscard]] double max_distance_m(double required_ebn0_db) const;
};

/// TX power allowed by the FCC mask over \p bandwidth_hz [dBm].
double fcc_limited_tx_power_dbm(double bandwidth_hz);

}  // namespace uwb::channel
