#include "channel/cir.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/fir_filter.h"

namespace uwb::channel {

Cir::Cir(std::vector<CirTap> taps) : taps_(std::move(taps)) {
  for (const auto& t : taps_) {
    detail::require(t.delay_s >= 0.0, "Cir: tap delays must be non-negative");
  }
  std::sort(taps_.begin(), taps_.end(),
            [](const CirTap& a, const CirTap& b) { return a.delay_s < b.delay_s; });
}

double Cir::total_energy() const noexcept {
  double e = 0.0;
  for (const auto& t : taps_) e += std::norm(t.gain);
  return e;
}

double Cir::mean_excess_delay() const noexcept {
  const double e = total_energy();
  if (e <= 0.0) return 0.0;
  double acc = 0.0;
  for (const auto& t : taps_) acc += std::norm(t.gain) * t.delay_s;
  return acc / e;
}

double Cir::rms_delay_spread() const noexcept {
  const double e = total_energy();
  if (e <= 0.0) return 0.0;
  const double mean = mean_excess_delay();
  double acc = 0.0;
  for (const auto& t : taps_) {
    const double d = t.delay_s - mean;
    acc += std::norm(t.gain) * d * d;
  }
  return std::sqrt(acc / e);
}

double Cir::max_delay() const noexcept {
  return taps_.empty() ? 0.0 : taps_.back().delay_s;
}

Cir& Cir::normalize_energy() {
  const double e = total_energy();
  if (e > 0.0) {
    const double g = 1.0 / std::sqrt(e);
    for (auto& t : taps_) t.gain *= g;
  }
  return *this;
}

Cir Cir::truncated(double threshold_db) const {
  double peak = 0.0;
  for (const auto& t : taps_) peak = std::max(peak, std::norm(t.gain));
  const double thresh = peak * from_db(threshold_db);
  std::vector<CirTap> kept;
  for (const auto& t : taps_) {
    if (std::norm(t.gain) >= thresh) kept.push_back(t);
  }
  return Cir(std::move(kept));
}

Cir Cir::strongest(std::size_t count) const {
  std::vector<CirTap> sorted = taps_;
  std::sort(sorted.begin(), sorted.end(),
            [](const CirTap& a, const CirTap& b) { return std::norm(a.gain) > std::norm(b.gain); });
  if (sorted.size() > count) sorted.resize(count);
  return Cir(std::move(sorted));
}

double Cir::energy_capture(std::size_t count) const {
  const double total = total_energy();
  if (total <= 0.0) return 0.0;
  return strongest(count).total_energy() / total;
}

CplxVec Cir::sampled(double fs) const {
  detail::require(fs > 0.0, "Cir::sampled: fs must be positive");
  if (taps_.empty()) return {};
  const auto len = static_cast<std::size_t>(std::llround(max_delay() * fs)) + 1;
  CplxVec h(len, cplx{});
  for (const auto& t : taps_) {
    const auto idx = static_cast<std::size_t>(std::llround(t.delay_s * fs));
    h[std::min(idx, len - 1)] += t.gain;
  }
  return h;
}

CplxWaveform Cir::apply(const CplxWaveform& x) const {
  // CM3/CM4 responses reach hundreds of sample-spaced taps at analog_fs;
  // dsp::convolve routes those through overlap-save FFT convolution (the
  // single hottest operation of a multipath link trial).
  const CplxVec h = sampled(x.sample_rate());
  if (h.empty()) return CplxWaveform(CplxVec{}, x.sample_rate());
  return CplxWaveform(dsp::convolve(x.samples(), h), x.sample_rate());
}

RealWaveform Cir::apply_real(const RealWaveform& x) const {
  const CplxVec h = sampled(x.sample_rate());
  if (h.empty()) return RealWaveform(RealVec{}, x.sample_rate());
  RealVec hr(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) hr[i] = h[i].real();
  return RealWaveform(dsp::convolve(x.samples(), hr), x.sample_rate());
}

Cir identity_cir() { return Cir({CirTap{0.0, cplx{1.0, 0.0}}}); }

}  // namespace uwb::channel
