#pragma once
/// \file saleh_valenzuela.h
/// \brief IEEE 802.15.3a Saleh-Valenzuela multipath channel model, CM1-CM4.
///
/// The paper designs for "severe multipath conditions (rms delay spread of
/// the channel on the order of 20 ns)". The 802.15.3a channel-modeling
/// subcommittee's S-V variant is the standard statistical model for exactly
/// these indoor UWB channels, with four canonical parameter sets:
///
///   CM1: 0-4 m line-of-sight          (tau_rms ~  5 ns)
///   CM2: 0-4 m non-line-of-sight      (tau_rms ~  8 ns)
///   CM3: 4-10 m non-line-of-sight     (tau_rms ~ 15 ns)
///   CM4: extreme NLOS                 (tau_rms ~ 25 ns)
///
/// Clusters arrive Poisson(Lambda); rays within a cluster Poisson(lambda);
/// mean tap power decays exp(-T/Gamma) across clusters and exp(-tau/gamma)
/// within; per-tap amplitudes are lognormal. Phases here are uniform(0,2pi)
/// for the complex-baseband representation (the real-passband model's +/-1
/// polarity option is also provided).

#include <string>

#include "channel/cir.h"
#include "common/rng.h"

namespace uwb::channel {

/// Parameter set of the 802.15.3a S-V model.
struct SvParams {
  std::string name = "CM3";
  double cluster_rate_per_s = 0.0667e9;  ///< Lambda [1/s]
  double ray_rate_per_s = 2.1e9;         ///< lambda [1/s]
  double cluster_decay_s = 14.0e-9;      ///< Gamma [s]
  double ray_decay_s = 7.9e-9;           ///< gamma [s]
  double cluster_fading_db = 3.3941;     ///< sigma_1 (lognormal, dB)
  double ray_fading_db = 3.3941;         ///< sigma_2 (lognormal, dB)
  double shadowing_db = 3.0;             ///< sigma_x total shadowing (dB)
  double max_excess_delay_s = 200e-9;    ///< generation horizon
  bool complex_phases = true;            ///< uniform phase vs +/-1 polarity
};

/// The four canonical parameter sets.
SvParams cm1();
SvParams cm2();
SvParams cm3();
SvParams cm4();

/// Parameter set by index 1..4.
SvParams cm_by_index(int cm);

/// Generator producing independent channel realizations.
class SalehValenzuela {
 public:
  explicit SalehValenzuela(SvParams params);

  [[nodiscard]] const SvParams& params() const noexcept { return params_; }

  /// Draws one realization. Energy-normalized unless \p apply_shadowing;
  /// with shadowing the total energy is lognormal around 1.
  [[nodiscard]] Cir realize(Rng& rng, bool apply_shadowing = false) const;

  /// Average rms delay spread over \p count realizations (model check).
  [[nodiscard]] double average_rms_delay_spread(Rng& rng, int count = 100) const;

 private:
  SvParams params_;
};

}  // namespace uwb::channel
