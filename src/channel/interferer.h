#pragma once
/// \file interferer.h
/// \brief Narrowband interferers -- the jamming scenario behind the paper's
///        "4-bit ADC in a narrowband interferer regime" result and the
///        digital spectral monitor + RF notch chain.

#include "common/rng.h"
#include "common/types.h"
#include "common/waveform.h"

namespace uwb::channel {

/// Interferer flavors.
enum class InterfererKind {
  kCw,          ///< pure tone (e.g. an 802.11a carrier leaking in-band)
  kModulated,   ///< BPSK-modulated narrowband carrier
  kSweptTone,   ///< tone with a slow linear frequency sweep
};

/// Description of one narrowband interferer at complex baseband.
struct InterfererSpec {
  InterfererKind kind = InterfererKind::kCw;
  double freq_offset_hz = 80e6;   ///< offset from the UWB channel center
  double power = 1.0;             ///< mean power (|amplitude|^2)
  double mod_rate_hz = 1e6;       ///< symbol rate for kModulated
  double sweep_rate_hz_per_s = 0.0;  ///< for kSweptTone
  double initial_phase_rad = 0.0;
};

/// Generates interference samples and injects them into received signals.
class Interferer {
 public:
  explicit Interferer(InterfererSpec spec);

  [[nodiscard]] const InterfererSpec& spec() const noexcept { return spec_; }

  /// Generates \p n samples at \p fs.
  [[nodiscard]] CplxVec generate(std::size_t n, double fs, Rng& rng) const;

  /// Adds interference to \p x with power set so the signal-to-interference
  /// ratio is \p sir_db relative to \p signal_power.
  void add_to(CplxWaveform& x, double signal_power, double sir_db, Rng& rng) const;

  /// Adds interference at the spec's absolute power.
  void add_to(CplxWaveform& x, Rng& rng) const;

 private:
  InterfererSpec spec_;
};

/// Convenience: CW interferer at \p freq_offset_hz whose power makes the
/// SIR equal \p sir_db against \p signal_power.
void add_cw_interferer(CplxWaveform& x, double freq_offset_hz, double signal_power,
                       double sir_db, Rng& rng);

}  // namespace uwb::channel
