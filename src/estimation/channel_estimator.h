#pragma once
/// \file channel_estimator.h
/// \brief Preamble-based channel impulse response estimation with n-bit tap
///        quantization -- the paper's "channel impulse response is estimated
///        with a precision of up to four bits during the packet preamble"
///        (Section 3). The estimate feeds the RAKE and Viterbi demodulator.

#include "channel/cir.h"
#include "common/types.h"
#include "common/waveform.h"

namespace uwb::estimation {

/// Estimator configuration.
struct ChannelEstimatorConfig {
  int quantization_bits = 4;     ///< per-component tap precision (0 = float)
  double tap_threshold_db = -20.0;  ///< discard taps below this vs strongest
  std::size_t max_taps = 64;     ///< cap on reported taps
  std::size_t max_delay_samples = 256;  ///< estimation window after the first path
};

/// Raw (sample-spaced) channel estimate plus bookkeeping.
struct ChannelEstimate {
  channel::Cir cir;              ///< quantized, thresholded estimate
  CplxVec raw_taps;              ///< unquantized correlator profile
  std::size_t reference_offset = 0;  ///< sample index of the first path in x
  std::size_t profile_start = 0;     ///< sample index of raw_taps[0] in x
  std::size_t peak_index = 0;        ///< strongest raw tap (into raw_taps)
  double peak_magnitude = 0.0;

  /// Absolute sample index of the strongest path in x -- the natural
  /// symbol-timing reference for slicer/MLSE observation.
  [[nodiscard]] std::size_t peak_offset() const noexcept {
    return profile_start + peak_index;
  }
};

/// Correlation channel sounder.
///
/// The preamble repeats a known template; correlating the received signal
/// against it yields the composite impulse response (pulse autocorrelation
/// convolved with the channel). Taps are normalized to the strongest path,
/// quantized component-wise to quantization_bits (sign + magnitude levels
/// over [-1, 1]), thresholded, and returned as a Cir whose delays are
/// relative to the first reported path.
class ChannelEstimator {
 public:
  explicit ChannelEstimator(const ChannelEstimatorConfig& config);

  [[nodiscard]] const ChannelEstimatorConfig& config() const noexcept { return config_; }

  /// Estimates from a received buffer \p x (starting at or before the
  /// preamble) and the known preamble waveform \p tmpl. \p coarse_offset is
  /// the acquisition's timing estimate; the sounder searches +/- a small
  /// window around it for the true first path.
  [[nodiscard]] ChannelEstimate estimate(const CplxWaveform& x, const CplxVec& tmpl,
                                         std::size_t coarse_offset) const;

  /// Quantizes a single complex tap to the configured precision; exposed
  /// for the precision-sweep bench (E6).
  [[nodiscard]] cplx quantize_tap(cplx tap, double full_scale) const;

  /// Symbol-spaced composite taps for the Viterbi (MLSE) demodulator:
  /// g[l] = quantized raw profile at (peak + l * sps), l = 0..memory.
  /// Referencing the *peak* keeps the punctual observation at the channel's
  /// energy maximum; later taps model the postcursor ISI the MLSE resolves.
  [[nodiscard]] std::vector<cplx> symbol_taps(const ChannelEstimate& est, std::size_t sps,
                                              int memory) const;

 private:
  ChannelEstimatorConfig config_;
};

}  // namespace uwb::estimation
