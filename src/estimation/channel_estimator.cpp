#include "estimation/channel_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/correlator.h"

namespace uwb::estimation {

ChannelEstimator::ChannelEstimator(const ChannelEstimatorConfig& config) : config_(config) {
  detail::require(config.quantization_bits >= 0 && config.quantization_bits <= 16,
                  "ChannelEstimator: quantization bits must be in [0,16]");
  detail::require(config.max_taps >= 1, "ChannelEstimator: max taps must be >= 1");
  detail::require(config.max_delay_samples >= 1,
                  "ChannelEstimator: estimation window must be >= 1");
}

cplx ChannelEstimator::quantize_tap(cplx tap, double full_scale) const {
  if (config_.quantization_bits == 0 || full_scale <= 0.0) return tap;
  // Mid-tread quantizer over [-full_scale, full_scale] per component with
  // 2^bits levels (sign included), matching a b-bit two's-complement
  // register in the back end.
  const int levels = 1 << config_.quantization_bits;
  const double step = 2.0 * full_scale / levels;
  auto q = [&](double v) {
    const double idx = std::round(v / step);
    const double clamped = std::clamp(idx, -static_cast<double>(levels / 2),
                                      static_cast<double>(levels / 2 - 1));
    return clamped * step;
  };
  return {q(tap.real()), q(tap.imag())};
}

ChannelEstimate ChannelEstimator::estimate(const CplxWaveform& x, const CplxVec& tmpl,
                                           std::size_t coarse_offset) const {
  detail::require(!tmpl.empty(), "ChannelEstimator: empty template");
  detail::require(x.size() >= tmpl.size(), "ChannelEstimator: buffer shorter than template");

  ChannelEstimate est;

  // Correlator profile: one complex tap per candidate delay, starting a bit
  // before the coarse offset so an early first path is not missed.
  const std::size_t back_off = std::min<std::size_t>(coarse_offset, 8);
  const std::size_t start = coarse_offset - back_off;
  const std::size_t num_lags =
      std::min(config_.max_delay_samples + back_off,
               x.size() >= tmpl.size() ? x.size() - tmpl.size() + 1 - start : 0);
  detail::require(num_lags > 0, "ChannelEstimator: no room for estimation window");

  double tmpl_energy = 0.0;
  for (const auto& v : tmpl) tmpl_energy += std::norm(v);
  detail::require(tmpl_energy > 0.0, "ChannelEstimator: zero-energy template");

  // One sliding correlation over the estimation window: dsp::correlate
  // dispatches long preamble templates to overlap-save FFT correlation
  // instead of num_lags independent O(|tmpl|) dot products.
  const auto first = x.samples().begin() + static_cast<std::ptrdiff_t>(start);
  const CplxVec window(first,
                       first + static_cast<std::ptrdiff_t>(num_lags + tmpl.size() - 1));
  est.raw_taps = dsp::correlate(window, tmpl);
  for (auto& tap : est.raw_taps) tap /= tmpl_energy;

  // Strongest path defines the scaling reference.
  const std::size_t peak = dsp::argmax_abs(est.raw_taps);
  est.peak_magnitude = std::abs(est.raw_taps[peak]);
  est.profile_start = start;
  est.peak_index = peak;
  est.reference_offset = start + peak;
  if (est.peak_magnitude <= 0.0) {
    est.cir = channel::Cir(std::vector<channel::CirTap>{});
    return est;
  }

  // Normalize to the peak, quantize, threshold, collect taps. Delays are
  // reported relative to the first kept tap.
  const double fs = x.sample_rate();
  const double thresh_mag = est.peak_magnitude * db_to_amp(config_.tap_threshold_db);

  struct Candidate {
    std::size_t lag;
    cplx gain;
  };
  std::vector<Candidate> kept;
  for (std::size_t lag = 0; lag < num_lags; ++lag) {
    if (std::abs(est.raw_taps[lag]) < thresh_mag) continue;
    const cplx normalized = est.raw_taps[lag] / est.peak_magnitude;
    const cplx q = quantize_tap(normalized, 1.0);
    if (std::abs(q) <= 0.0) continue;
    kept.push_back({lag, q * est.peak_magnitude});
  }

  // Keep the strongest max_taps.
  std::sort(kept.begin(), kept.end(),
            [](const Candidate& a, const Candidate& b) { return std::norm(a.gain) > std::norm(b.gain); });
  if (kept.size() > config_.max_taps) kept.resize(config_.max_taps);
  std::sort(kept.begin(), kept.end(),
            [](const Candidate& a, const Candidate& b) { return a.lag < b.lag; });

  std::vector<channel::CirTap> taps;
  taps.reserve(kept.size());
  const std::size_t first_lag = kept.empty() ? 0 : kept.front().lag;
  for (const auto& c : kept) {
    taps.push_back({static_cast<double>(c.lag - first_lag) / fs, c.gain});
  }
  if (!kept.empty()) {
    est.reference_offset = start + first_lag;
  }
  est.cir = channel::Cir(std::move(taps));
  return est;
}

std::vector<cplx> ChannelEstimator::symbol_taps(const ChannelEstimate& est, std::size_t sps,
                                                int memory) const {
  detail::require(sps >= 1, "symbol_taps: sps must be >= 1");
  detail::require(memory >= 0, "symbol_taps: memory must be >= 0");
  std::vector<cplx> g(static_cast<std::size_t>(memory) + 1, cplx{});
  if (est.raw_taps.empty() || est.peak_magnitude <= 0.0) return g;
  for (int l = 0; l <= memory; ++l) {
    const std::size_t idx = est.peak_index + static_cast<std::size_t>(l) * sps;
    if (idx < est.raw_taps.size()) {
      const cplx normalized = est.raw_taps[idx] / est.peak_magnitude;
      g[static_cast<std::size_t>(l)] = quantize_tap(normalized, 1.0) * est.peak_magnitude;
    }
  }
  return g;
}

}  // namespace uwb::estimation
