#pragma once
/// \file spectral_monitor.h
/// \brief The "Spectral Monitoring" block of Fig. 3: detects a narrowband
///        interferer buried in (or towering over) the UWB signal and
///        estimates its frequency for the RF notch filter.
///
/// Detection logic: a UWB signal's periodogram is nearly flat across the
/// channel; a narrowband interferer concentrates power into a few bins.
/// The monitor compares the peak bin against the median bin level -- a
/// robust noise-floor reference -- and flags an interferer when the ratio
/// exceeds a threshold. Frequency is refined by parabolic interpolation of
/// the log-magnitude around the peak (sub-bin accuracy).

#include <cstddef>
#include <optional>

#include "common/types.h"
#include "common/waveform.h"

namespace uwb::estimation {

/// Monitor configuration.
struct SpectralMonitorConfig {
  std::size_t fft_size = 1024;
  double detect_threshold_db = 12.0;  ///< peak over median to declare detection
  int num_averages = 4;               ///< periodogram averaging segments
};

/// Detection report.
struct InterfererReport {
  bool detected = false;
  double frequency_hz = 0.0;      ///< signed baseband offset estimate
  double peak_over_median_db = 0.0;
  double estimated_power = 0.0;   ///< interferer power estimate
};

/// FFT-based narrowband interferer detector / frequency estimator.
class SpectralMonitor {
 public:
  explicit SpectralMonitor(const SpectralMonitorConfig& config);

  [[nodiscard]] const SpectralMonitorConfig& config() const noexcept { return config_; }

  /// Analyzes a complex baseband capture.
  [[nodiscard]] InterfererReport analyze(const CplxWaveform& x) const;

 private:
  SpectralMonitorConfig config_;
};

}  // namespace uwb::estimation
