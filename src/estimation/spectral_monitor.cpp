#include "estimation/spectral_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/fft.h"
#include "dsp/window.h"

namespace uwb::estimation {

SpectralMonitor::SpectralMonitor(const SpectralMonitorConfig& config) : config_(config) {
  detail::require(is_pow2(config.fft_size), "SpectralMonitor: FFT size must be a power of two");
  detail::require(config.num_averages >= 1, "SpectralMonitor: averages must be >= 1");
  detail::require(config.detect_threshold_db > 0.0,
                  "SpectralMonitor: threshold must be positive");
}

InterfererReport SpectralMonitor::analyze(const CplxWaveform& x) const {
  const std::size_t n = config_.fft_size;
  detail::require(x.size() >= n, "SpectralMonitor: capture shorter than FFT size");

  // Averaged windowed periodogram (Hann) over up to num_averages segments.
  const RealVec w = dsp::hann(n);
  double window_power = 0.0;
  for (double v : w) window_power += v * v;

  const std::size_t max_segments =
      std::min<std::size_t>(static_cast<std::size_t>(config_.num_averages), x.size() / n);
  RealVec bins(n, 0.0);
  CplxVec seg(n);
  for (std::size_t s = 0; s < max_segments; ++s) {
    const std::size_t off = s * n;
    for (std::size_t i = 0; i < n; ++i) seg[i] = x[off + i] * w[i];
    dsp::fft_inplace(seg);
    for (std::size_t i = 0; i < n; ++i) bins[i] += std::norm(seg[i]);
  }
  const double norm = 1.0 / (static_cast<double>(max_segments) * window_power);
  for (auto& b : bins) b *= norm;

  // Peak and median.
  const std::size_t peak = static_cast<std::size_t>(
      std::distance(bins.begin(), std::max_element(bins.begin(), bins.end())));
  RealVec sorted = bins;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n / 2),
                   sorted.end());
  const double median = std::max(sorted[n / 2], 1e-300);

  InterfererReport report;
  report.peak_over_median_db = to_db(bins[peak] / median);
  report.detected = report.peak_over_median_db >= config_.detect_threshold_db;
  report.estimated_power = bins[peak];

  // Sub-bin frequency via parabolic interpolation of log-magnitude.
  const double y0 = std::log(std::max(bins[(peak + n - 1) % n], 1e-300));
  const double y1 = std::log(std::max(bins[peak], 1e-300));
  const double y2 = std::log(std::max(bins[(peak + 1) % n], 1e-300));
  double delta = 0.0;
  const double denom = y0 - 2.0 * y1 + y2;
  if (std::abs(denom) > 1e-12) {
    delta = 0.5 * (y0 - y2) / denom;
    delta = std::clamp(delta, -0.5, 0.5);
  }
  const double fs = x.sample_rate();
  double freq = (static_cast<double>(peak) + delta) * fs / static_cast<double>(n);
  if (freq >= fs / 2.0) freq -= fs;  // map to signed baseband offset
  report.frequency_hz = freq;
  return report;
}

}  // namespace uwb::estimation
