#include "estimation/snr_estimator.h"

#include <cmath>

#include "common/error.h"

namespace uwb::estimation {

double snr_data_aided(const std::vector<double>& soft_known_sign) {
  detail::require(soft_known_sign.size() >= 2, "snr_data_aided: need at least 2 samples");
  // With known symbol signs the soft values are all "+1-like": mean is the
  // signal amplitude, spread is noise.
  double mean = 0.0;
  for (double v : soft_known_sign) mean += v;
  mean /= static_cast<double>(soft_known_sign.size());
  double var = 0.0;
  for (double v : soft_known_sign) var += (v - mean) * (v - mean);
  var /= static_cast<double>(soft_known_sign.size() - 1);
  if (var <= 0.0) return 1e12;
  return (mean * mean) / var;
}

double snr_m2m4(const std::vector<double>& soft) {
  detail::require(soft.size() >= 4, "snr_m2m4: need at least 4 samples");
  double m2 = 0.0, m4 = 0.0;
  for (double v : soft) {
    const double p = v * v;
    m2 += p;
    m4 += p * p;
  }
  m2 /= static_cast<double>(soft.size());
  m4 /= static_cast<double>(soft.size());
  // For BPSK in real noise: S = sqrt(1.5 m2^2 - 0.5 m4) (real-signal kurtosis
  // constants), N = m2 - S.
  const double s2 = std::max(1.5 * m2 * m2 - 0.5 * m4, 0.0);
  const double s = std::sqrt(s2);
  const double n = m2 - s;
  if (n <= 0.0) return 1e12;
  return s / n;
}

double noise_floor(const CplxVec& quiet_capture) {
  detail::require(!quiet_capture.empty(), "noise_floor: empty capture");
  double acc = 0.0;
  for (const auto& v : quiet_capture) acc += std::norm(v);
  return acc / static_cast<double>(quiet_capture.size());
}

}  // namespace uwb::estimation
