#pragma once
/// \file snr_estimator.h
/// \brief Data-aided and blind SNR estimation from correlator outputs. The
///        paper's receiver "allows us to trade off power dissipation with
///        ... quality of service" -- the trade-off controller needs an SNR
///        estimate to pick a configuration.

#include "common/types.h"

namespace uwb::estimation {

/// Data-aided estimate from known-symbol decision variables: signal power
/// = mean^2 of |soft|, noise = variance around it. Returns linear SNR.
double snr_data_aided(const std::vector<double>& soft_known_sign);

/// Blind M2M4 moments estimator for a constant-modulus constellation
/// (BPSK soft outputs). Returns linear SNR (clamped to >= 0).
double snr_m2m4(const std::vector<double>& soft);

/// Noise-floor estimate from a signal-free capture: mean |x|^2.
double noise_floor(const CplxVec& quiet_capture);

}  // namespace uwb::estimation
