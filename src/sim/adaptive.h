#pragma once
/// \file adaptive.h
/// \brief The reconfiguration controller the paper's closing paragraph
///        implies: "This receiver allows us to trade off power dissipation
///        with signal processing complexity, quality of service and data
///        rate, adapting to channel conditions."
///
/// The controller watches what the receiver already measures per packet --
/// SNR estimate, channel-estimate delay spread, interferer flag -- and
/// picks a back-end configuration rung: RAKE finger count, MLSE memory,
/// ADC resolution. Hysteresis keeps it from thrashing between rungs.

#include <cstddef>
#include <string>
#include <vector>

#include "txrx/receiver_gen2.h"
#include "txrx/transceiver_config.h"

namespace uwb::sim {

/// What the controller reads from the receiver's per-packet diagnostics.
struct AdaptationObservation {
  double snr_db = 20.0;
  double delay_spread_s = 0.0;  ///< rms delay spread of the CIR estimate
  bool interferer = false;
};

/// Builds the observation from a receive result.
AdaptationObservation observe(const txrx::Gen2RxResult& rx);

/// One configuration rung.
struct AdaptationDecision {
  std::string rung;            ///< "minimal" / "low" / "nominal" / "maximal"
  std::size_t rake_fingers = 8;
  bool use_mlse = true;
  int mlse_memory = 3;
  int chanest_bits = 4;

  bool operator==(const AdaptationDecision& other) const {
    return rung == other.rung;
  }
};

/// Threshold-based controller with hysteresis.
///
/// Policy: the multipath severity (delay spread relative to the bit
/// period) sets the combining/equalization effort, SNR headroom relaxes
/// it, and a detected interferer always forces at least the nominal rung
/// (the notch path needs the monitor's resolution).
class LinkAdapter {
 public:
  /// \p bit_period_s is the symbol duration the ISI is measured against.
  explicit LinkAdapter(double bit_period_s = 10e-9, double snr_headroom_db = 8.0);

  /// Picks a rung for the observed conditions.
  [[nodiscard]] AdaptationDecision decide(const AdaptationObservation& obs) const;

  /// Stateful update with hysteresis: only moves when decide() differs from
  /// the current rung for \p persistence consecutive calls.
  AdaptationDecision update(const AdaptationObservation& obs);

  /// Writes a decision into a configuration (the fields the paper calls
  /// programmable). Converter hardware fields stay untouched.
  static void apply(const AdaptationDecision& decision, txrx::Gen2Config& config);

  /// The rungs the controller selects between, minimal to maximal -- the
  /// single source of truth for sweeps that measure the ladder.
  [[nodiscard]] static std::vector<AdaptationDecision> ladder();

  [[nodiscard]] const AdaptationDecision& current() const noexcept { return current_; }

 private:
  double bit_period_s_;
  double snr_headroom_db_;
  AdaptationDecision current_;
  AdaptationDecision pending_;
  int pending_count_ = 0;
  static constexpr int kPersistence = 2;
};

}  // namespace uwb::sim
