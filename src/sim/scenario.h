#pragma once
/// \file scenario.h
/// \brief Canned configurations for examples, tests and benches: the
///        paper-nominal gen-1 and gen-2 transceivers plus lighter variants
///        for fast Monte-Carlo runs.

#include "txrx/transceiver_config.h"

namespace uwb::sim {

/// Paper-nominal gen-1 configuration (Section 2 / Fig. 1).
txrx::Gen1Config gen1_nominal();

/// Gen-1 with a short preamble and small spreading factor -- faster
/// Monte-Carlo while keeping every block in the signal path.
txrx::Gen1Config gen1_fast();

/// Paper-nominal gen-2 configuration (Section 3 / Fig. 3).
txrx::Gen2Config gen2_nominal();

/// Gen-2 with a shorter preamble for fast BER sweeps.
txrx::Gen2Config gen2_fast();

}  // namespace uwb::sim
