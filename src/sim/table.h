#pragma once
/// \file table.h
/// \brief Fixed-width console tables. Every bench prints its paper
///        figure/table reproduction through this, so outputs are uniform
///        and diffable (EXPERIMENTS.md records them).

#include <iosfwd>
#include <string>
#include <vector>

namespace uwb::sim {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row (cells are pre-formatted strings).
  void add_row(std::vector<std::string> cells);

  /// Renders with column padding and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Convenience printers for cell values.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string db(double v, int precision = 1);
  static std::string percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("=== E5: ADC resolution ===").
std::string banner(const std::string& title);

}  // namespace uwb::sim
