#include "sim/ber_simulator.h"

namespace uwb::sim {

BerPoint measure_ber(const std::function<TrialOutcome()>& trial, const BerStop& stop) {
  BerCounter counter;
  std::size_t trials = 0;
  while (counter.errors() < stop.min_errors && counter.bits() < stop.max_bits &&
         trials < stop.max_trials) {
    const TrialOutcome out = trial();
    counter.add(out.errors, out.bits);
    ++trials;
  }
  BerPoint point;
  point.ber = counter.ber();
  point.ci95 = counter.ci95_halfwidth();
  point.bits = counter.bits();
  point.errors = counter.errors();
  point.trials = trials;
  return point;
}

}  // namespace uwb::sim
