#include "sim/ber_simulator.h"

#include <algorithm>

#include "engine/parallel_ber.h"

namespace uwb::sim {

BerStop scale_stop(BerStop stop, std::size_t error_divisor, std::size_t bits_divisor) {
  stop.min_errors =
      std::max<std::size_t>(1, stop.min_errors / std::max<std::size_t>(1, error_divisor));
  stop.max_bits =
      std::max<std::size_t>(1, stop.max_bits / std::max<std::size_t>(1, bits_divisor));
  return stop;
}

BerPoint measure_ber(const std::function<TrialOutcome()>& trial, const BerStop& stop) {
  // Thin adapter over the engine's serial core: the closure owns its
  // randomness, so the per-trial Rng the engine supplies is unused here.
  return engine::measure_ber_serial([&trial](std::size_t, Rng&) { return trial(); }, stop,
                                    Rng(0));
}

}  // namespace uwb::sim
