#include "sim/ber_simulator.h"

#include "engine/parallel_ber.h"

namespace uwb::sim {

BerPoint measure_ber(const std::function<TrialOutcome()>& trial, const BerStop& stop) {
  // Thin adapter over the engine's serial core: the closure owns its
  // randomness, so the per-trial Rng the engine supplies is unused here.
  return engine::measure_ber_serial([&trial](std::size_t, Rng&) { return trial(); }, stop,
                                    Rng(0));
}

}  // namespace uwb::sim
