#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uwb::sim {

double BerCounter::ci95_halfwidth() const noexcept {
  if (bits_ == 0) return 0.0;
  const double n = static_cast<double>(bits_);
  const double p = ber();
  const double z = 1.96;
  // Wilson: center shifts slightly; report the half-width around p.
  const double denom = 1.0 + z * z / n;
  const double half = (z / denom) * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n));
  return half;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double MetricStats::variance() const noexcept {
  if (count < 2) return 0.0;
  const double n = static_cast<double>(count);
  const double centered = sum_sq - sum * sum / n;
  return std::max(0.0, centered / (n - 1.0));
}

MetricStats& MetricSet::entry(const std::string& name) {
  for (auto& [key, stats] : entries_) {
    if (key == name) return stats;
  }
  entries_.emplace_back(name, MetricStats{});
  return entries_.back().second;
}

void MetricSet::add(const std::string& name, double value) { entry(name).add(value); }

void MetricSet::merge(const MetricSet& other) {
  for (const auto& [name, stats] : other.entries_) {
    entry(name).merge(stats);
  }
}

const MetricStats* MetricSet::find(const std::string& name) const noexcept {
  for (const auto& [key, stats] : entries_) {
    if (key == name) return &stats;
  }
  return nullptr;
}

double percentile(RealVec values, double p) {
  detail::require(!values.empty(), "percentile: empty sample");
  detail::require(p >= 0.0 && p <= 100.0, "percentile: p must be in [0,100]");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace uwb::sim
