#pragma once
/// \file ber_simulator.h
/// \brief Monte-Carlo BER estimation with an error-count stopping rule: run
///        packet trials until min_errors errors or max_bits bits, whichever
///        comes first. All link benches share this loop.

#include <functional>

#include "sim/metrics.h"

namespace uwb::sim {

/// One trial's contribution.
struct TrialOutcome {
  std::size_t bits = 0;
  std::size_t errors = 0;
};

/// Stopping rule. max_trials is a hard stop even when a trial stream
/// yields no errors (or no bits at all), so a degenerate trial can never
/// spin the loop forever.
struct BerStop {
  std::size_t min_errors = 50;    ///< stop after this many errors...
  std::size_t max_bits = 2'000'000;  ///< ...or this many bits
  std::size_t max_trials = 100'000;  ///< ...or this many trials, hard stop
};

/// A measured BER point.
struct BerPoint {
  double ber = 0.0;
  double ci95 = 0.0;
  std::size_t bits = 0;
  std::size_t errors = 0;
  std::size_t trials = 0;
};

/// Runs \p trial repeatedly under the stopping rule. (Sequential; this is
/// a thin adapter over engine::measure_ber_serial -- parallel sweeps use
/// engine::SweepEngine / engine::measure_ber_parallel, which produce
/// identical results for seed-parameterized trials.)
BerPoint measure_ber(const std::function<TrialOutcome()>& trial, const BerStop& stop = {});

}  // namespace uwb::sim
