#pragma once
/// \file ber_simulator.h
/// \brief Monte-Carlo trial accounting: the per-trial outcome record (bit
///        counts plus named scalar metrics), the stopping rule, and the
///        measured-point results every link bench shares.

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/metrics.h"
#include "stats/binomial_ci.h"

namespace uwb::sim {

/// One trial's contribution: the bit/error pair every BER loop consumes
/// plus the trial's named scalar metrics (acquisition flags, sync time,
/// RAKE capture, SNR estimate, ...). A metric absent from a trial simply
/// contributes no observation -- e.g. a sync-time metric emitted only on
/// detected trials averages over the detected subset.
///
/// Importance-sampled trials (stats::SamplingPolicy) set \p weighted and
/// carry the trial's log-likelihood ratio: the errors then enter the BER
/// estimate scaled by exp(log_weight) while bits stay the unweighted
/// denominator.
struct TrialOutcome {
  std::size_t bits = 0;
  std::size_t errors = 0;
  std::vector<std::pair<std::string, double>> metrics;
  double log_weight = 0.0;
  bool weighted = false;
};

/// Stopping rule. max_trials is a hard stop even when a trial stream
/// yields no errors (or no bits at all), so a degenerate trial can never
/// spin the loop forever.
///
/// The rule targets *bit* errors by default. Setting \p metric names a
/// per-trial success-flag metric instead: a committed trial then counts
/// one error toward min_errors when that metric is absent or zero (e.g.
/// metric = "timing_correct" stops after min_errors acquisition failures).
/// Setting \p target_rel_ci_width > 0 switches the error budget off: the
/// point instead stops once its BER estimate has at least one error and a
/// 95% CI half-width / BER ratio at or below the target (Wilson for plain
/// counts, the normal interval for weighted estimates). max_bits and
/// max_trials stay as hard caps either way.
struct BerStop {
  std::size_t min_errors = 50;       ///< stop after this many errors...
  std::size_t max_bits = 2'000'000;  ///< ...or this many bits
  std::size_t max_trials = 100'000;  ///< ...or this many trials, hard stop
  std::string metric;                ///< "" = bit errors; else a success-flag metric
  double target_rel_ci_width = 0.0;  ///< > 0: stop on relative CI width instead

  [[nodiscard]] bool operator==(const BerStop&) const = default;
};

/// Divides a stopping rule's error/bit budgets for a quick pass, clamped
/// so a small budget can never degenerate to min_errors == 0 (stop
/// immediately) or max_bits == 0. The one scaling helper shared by the
/// benches' UWB_BENCH_FAST mode and the uwb_sweep CLI's --fast flag.
[[nodiscard]] BerStop scale_stop(BerStop stop, std::size_t error_divisor,
                                 std::size_t bits_divisor);

/// A measured BER point. \p ci95 keeps its historical meaning (Wilson
/// half-width for plain counts, normal half-width for weighted estimates);
/// [ci_lo, ci_hi] is the full two-sided 95% interval computed by
/// \p ci_method. Weighted (importance-sampled) points also report the
/// effective sample size of their weight set.
struct BerPoint {
  double ber = 0.0;
  double ci95 = 0.0;
  std::size_t bits = 0;
  std::size_t errors = 0;
  std::size_t trials = 0;
  double ci_lo = 0.0;
  double ci_hi = 1.0;
  stats::CiMethod ci_method = stats::CiMethod::kClopperPearson;
  bool weighted = false;
  double ess = 0.0;  ///< effective sample size (trials when unweighted)
};

/// A fully measured grid point: the BER counters plus the reductions of
/// every named metric the trials emitted (count / mean / variance per
/// metric, see MetricStats). What engine::measure_point_* returns and the
/// result sinks serialize.
struct MeasuredPoint {
  BerPoint ber;
  MetricSet metrics;
};

/// Runs \p trial repeatedly under the stopping rule. (Sequential; this is
/// a thin adapter over engine::measure_point_serial -- parallel sweeps use
/// engine::SweepEngine / engine::measure_point_parallel, which produce
/// identical results for seed-parameterized trials.)
BerPoint measure_ber(const std::function<TrialOutcome()>& trial, const BerStop& stop = {});

}  // namespace uwb::sim
