#include "sim/adaptive.h"

#include "common/error.h"

namespace uwb::sim {

AdaptationObservation observe(const txrx::Gen2RxResult& rx) {
  AdaptationObservation obs;
  obs.snr_db = rx.snr_estimate_db;
  obs.delay_spread_s = rx.channel_estimate.rms_delay_spread();
  obs.interferer = rx.interferer.detected;
  return obs;
}

namespace {

AdaptationDecision rung_minimal() { return {"minimal", 2, false, 1, 2}; }
AdaptationDecision rung_low() { return {"low", 4, false, 1, 3}; }
AdaptationDecision rung_nominal() { return {"nominal", 8, true, 3, 4}; }
AdaptationDecision rung_maximal() { return {"maximal", 16, true, 5, 4}; }

}  // namespace

LinkAdapter::LinkAdapter(double bit_period_s, double snr_headroom_db)
    : bit_period_s_(bit_period_s), snr_headroom_db_(snr_headroom_db),
      current_(rung_nominal()), pending_(rung_nominal()) {
  detail::require(bit_period_s > 0.0, "LinkAdapter: bit period must be positive");
}

AdaptationDecision LinkAdapter::decide(const AdaptationObservation& obs) const {
  // Multipath severity: ISI span in bit periods.
  const double isi_bits = obs.delay_spread_s / bit_period_s_;

  AdaptationDecision decision;
  if (isi_bits > 1.2) {
    decision = rung_maximal();
  } else if (isi_bits > 0.5) {
    decision = rung_nominal();
  } else if (isi_bits > 0.2) {
    decision = rung_low();
  } else {
    decision = rung_minimal();
  }

  // Generous SNR headroom lets the controller shed one rung of effort;
  // starved links escalate one rung.
  if (obs.snr_db > 14.0 + snr_headroom_db_ && decision.rung == "nominal") {
    decision = rung_low();
  } else if (obs.snr_db < 10.0 && decision.rung == "minimal") {
    decision = rung_low();
  } else if (obs.snr_db < 10.0 && decision.rung == "low") {
    decision = rung_nominal();
  }

  // The interference path (monitor + notch + restored dynamic range) needs
  // at least the nominal back end.
  if (obs.interferer &&
      (decision.rung == "minimal" || decision.rung == "low")) {
    decision = rung_nominal();
  }
  return decision;
}

AdaptationDecision LinkAdapter::update(const AdaptationObservation& obs) {
  const AdaptationDecision wanted = decide(obs);
  if (wanted == current_) {
    pending_count_ = 0;
    return current_;
  }
  if (wanted == pending_) {
    if (++pending_count_ >= kPersistence) {
      current_ = wanted;
      pending_count_ = 0;
    }
  } else {
    pending_ = wanted;
    pending_count_ = 1;
  }
  return current_;
}

std::vector<AdaptationDecision> LinkAdapter::ladder() {
  return {rung_minimal(), rung_low(), rung_nominal(), rung_maximal()};
}

void LinkAdapter::apply(const AdaptationDecision& decision, txrx::Gen2Config& config) {
  config.rake.num_fingers = decision.rake_fingers;
  config.use_mlse = decision.use_mlse;
  config.mlse.memory = decision.mlse_memory;
  config.chanest.quantization_bits = decision.chanest_bits;
}

}  // namespace uwb::sim
