#include "sim/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace uwb::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  detail::require(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  detail::require(cells.size() == headers_.size(), "Table: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::db(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f dB", precision, v);
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

std::string banner(const std::string& title) {
  return "\n=== " + title + " ===\n";
}

}  // namespace uwb::sim
