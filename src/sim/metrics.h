#pragma once
/// \file metrics.h
/// \brief Measurement bookkeeping: BER counters with confidence intervals,
///        running statistics, percentiles.

#include <cstddef>

#include "common/types.h"

namespace uwb::sim {

/// Accumulates bit-error observations.
class BerCounter {
 public:
  void add(std::size_t errors, std::size_t bits) noexcept {
    errors_ += errors;
    bits_ += bits;
  }

  [[nodiscard]] std::size_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }

  /// Point estimate (0 when no bits observed).
  [[nodiscard]] double ber() const noexcept {
    return bits_ == 0 ? 0.0 : static_cast<double>(errors_) / static_cast<double>(bits_);
  }

  /// Wilson-score interval half-width at ~95% confidence.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  void reset() noexcept {
    errors_ = 0;
    bits_ = 0;
  }

 private:
  std::size_t errors_ = 0;
  std::size_t bits_ = 0;
};

/// Streaming mean/variance/extremes (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0..100) of a sample vector (copies + sorts).
double percentile(RealVec values, double p);

}  // namespace uwb::sim
