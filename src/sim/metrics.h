#pragma once
/// \file metrics.h
/// \brief Measurement bookkeeping: BER counters with confidence intervals,
///        running statistics, percentiles, and the named-metric reductions
///        (count / sum / sum-of-squares) the sweep engine accumulates.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace uwb::sim {

/// Accumulates bit-error observations.
class BerCounter {
 public:
  void add(std::size_t errors, std::size_t bits) noexcept {
    errors_ += errors;
    bits_ += bits;
  }

  [[nodiscard]] std::size_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }

  /// Point estimate (0 when no bits observed).
  [[nodiscard]] double ber() const noexcept {
    return bits_ == 0 ? 0.0 : static_cast<double>(errors_) / static_cast<double>(bits_);
  }

  /// Wilson-score interval half-width at ~95% confidence.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  void reset() noexcept {
    errors_ = 0;
    bits_ = 0;
  }

 private:
  std::size_t errors_ = 0;
  std::size_t bits_ = 0;
};

/// Streaming mean/variance/extremes (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0..100) of a sample vector (copies + sorts).
double percentile(RealVec values, double p);

/// Reduction state of one named scalar metric: count / sum / sum-of-squares.
/// This is the representation the sweep engine commits trial metrics into --
/// merging two states is exact integer/FP addition, and mean/variance are
/// derived on demand, so a point's statistics are a pure function of the
/// committed trial prefix.
struct MetricStats {
  std::size_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;

  void add(double value) noexcept {
    ++count;
    sum += value;
    sum_sq += value * value;
  }

  /// Accumulates another state (same metric). Exact for counts; the FP sums
  /// add in call order, so callers that need bit-reproducibility must merge
  /// in a deterministic order (the engine commits in trial-index order).
  void merge(const MetricStats& other) noexcept {
    count += other.count;
    sum += other.sum;
    sum_sq += other.sum_sq;
  }

  /// Sample mean (0 when no observations).
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Unbiased sample variance (n-1 denominator; 0 when count < 2). Clamped
  /// at 0 against the cancellation the sum-of-squares form can produce.
  [[nodiscard]] double variance() const noexcept;
};

/// An ordered set of named metric reductions. Order is first-appearance
/// order of add() calls -- deterministic under the engine's ordered commit
/// -- and is preserved through serialization, so result files are stable.
class MetricSet {
 public:
  /// Adds one observation of \p name (creates the entry on first sight).
  void add(const std::string& name, double value);

  /// Merges another set (entries absent here are appended in order).
  void merge(const MetricSet& other);

  [[nodiscard]] const std::vector<std::pair<std::string, MetricStats>>& entries()
      const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Stats for \p name, or nullptr when the metric was never observed.
  [[nodiscard]] const MetricStats* find(const std::string& name) const noexcept;

 private:
  MetricStats& entry(const std::string& name);

  std::vector<std::pair<std::string, MetricStats>> entries_;
};

}  // namespace uwb::sim
