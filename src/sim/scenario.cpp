#include "sim/scenario.h"

namespace uwb::sim {

txrx::Gen1Config gen1_nominal() {
  txrx::Gen1Config config;  // defaults are the paper numbers
  return config;
}

txrx::Gen1Config gen1_fast() {
  txrx::Gen1Config config;
  config.preamble_repetitions = 1;
  config.packet.preamble_repetitions = 1;
  return config;
}

txrx::Gen2Config gen2_nominal() {
  txrx::Gen2Config config;  // defaults are the paper numbers
  return config;
}

txrx::Gen2Config gen2_fast() {
  txrx::Gen2Config config;
  config.packet.preamble_msequence_degree = 6;  // 63-symbol PN
  config.packet.preamble_repetitions = 2;
  config.chanest.max_delay_samples = 128;
  return config;
}

}  // namespace uwb::sim
