#include "txrx/link.h"

#include <cmath>

#include "channel/awgn.h"
#include "channel/interferer.h"
#include "common/error.h"
#include "fec/viterbi_decoder.h"

namespace uwb::txrx {

std::string to_string(Generation gen) {
  return gen == Generation::kGen1 ? "gen1" : "gen2";
}

TrialOptions default_options(Generation gen) {
  TrialOptions options;
  if (gen == Generation::kGen1) {
    options.payload_bits = 32;
    options.genie_timing = true;  // BER runs use genie; acquisition runs don't
  }
  return options;
}

namespace {

/// Loud capability check shared by make_link and the gen-1 run paths: a
/// scenario asking gen-1 for gen-2-only machinery is a bug, not a no-op.
void require_supported(const LinkCaps& caps, const TrialOptions& options) {
  if (!caps.supports_interferer) {
    detail::require(!options.interferer, to_string(caps.generation) +
                                             " link does not support an interferer");
  }
  if (!caps.supports_auto_notch) {
    detail::require(!options.auto_notch,
                    to_string(caps.generation) + " link does not support auto_notch");
  }
  if (!caps.supports_fec) {
    detail::require(!options.fec.has_value(),
                    to_string(caps.generation) + " link does not support an outer FEC");
  }
  if (!caps.supports_acquisition_trials) {
    detail::require(options.kind != TrialKind::kAcquisition,
                    to_string(caps.generation) +
                        " link does not support acquisition trials");
  }
  if (options.channel_source.is_ensemble()) {
    detail::require(options.channel_source.ensemble_count >= 1,
                    "ensemble channel source needs ensemble_count >= 1");
  }
  // A spec can only ask for metrics this trial kind actually emits --
  // recording a never-emitted metric would silently produce empty columns.
  for (const std::string& name : options.record_metrics) {
    detail::require(emits_metric(caps.generation, options.kind, name),
                    "unknown metric '" + name + "' in record_metrics: a " +
                        to_string(caps.generation) +
                        (options.kind == TrialKind::kAcquisition ? " acquisition"
                                                                 : " packet") +
                        " trial does not emit it");
  }
}

/// The realization an ensemble-mode multipath trial must use. Loud when the
/// harness forgot to resolve one: drawing fresh would silently run a
/// different experiment than the spec describes.
const channel::Cir* ensemble_channel_or_throw(const TrialOptions& options,
                                              const TrialContext& context) {
  if (context.channel != nullptr) {
    // The inverse mismatch is equally silent-experiment-shaped: a resolved
    // realization alongside fresh-mode options means the caller forgot one
    // side or the other.
    detail::require(options.channel_source.is_ensemble(),
                    "TrialContext carries a channel realization but "
                    "options.channel_source is fresh-mode");
    return context.channel;
  }
  detail::require(!options.channel_source.is_ensemble() || options.cm < 1,
                  "ensemble channel source needs a resolved realization in TrialContext "
                  "(run through engine::SweepEngine, or resolve one via "
                  "engine::ChannelCache and pass it explicitly)");
  return nullptr;
}

}  // namespace

channel::SvParams ensemble_sv_params(int cm, Generation gen) {
  channel::SvParams params = channel::cm_by_index(cm);
  params.complex_phases = gen == Generation::kGen2;
  return params;
}

// ------------------------------------------------------------- LinkSpec ----

LinkSpec LinkSpec::for_gen1(Gen1Config config) {
  return for_gen1(std::move(config), default_options(Generation::kGen1));
}

LinkSpec LinkSpec::for_gen1(Gen1Config config, TrialOptions options) {
  LinkSpec spec;
  spec.config = std::move(config);
  spec.options = std::move(options);
  return spec;
}

LinkSpec LinkSpec::for_gen2(Gen2Config config) {
  return for_gen2(std::move(config), default_options(Generation::kGen2));
}

LinkSpec LinkSpec::for_gen2(Gen2Config config, TrialOptions options) {
  LinkSpec spec;
  spec.config = std::move(config);
  spec.options = std::move(options);
  return spec;
}

LinkCaps generation_caps(Generation gen) {
  LinkCaps caps;
  caps.generation = gen;
  if (gen == Generation::kGen1) {
    caps.complex_baseband = false;
    caps.supports_interferer = false;
    caps.supports_auto_notch = false;
    caps.supports_fec = false;
    caps.supports_acquisition_trials = true;
  } else {
    caps.complex_baseband = true;
    caps.supports_interferer = true;
    caps.supports_auto_notch = true;
    caps.supports_fec = true;
    caps.supports_acquisition_trials = false;
  }
  // Derived, not hand-listed: the advertised vocabulary is the union of
  // what the supported trial kinds emit, so it cannot drift from
  // trial_metric_names.
  caps.metric_names = trial_metric_names(gen, TrialKind::kPacket);
  if (caps.supports_acquisition_trials) {
    for (std::string& name : trial_metric_names(gen, TrialKind::kAcquisition)) {
      if (!emits_metric(gen, TrialKind::kPacket, name)) {
        caps.metric_names.push_back(std::move(name));
      }
    }
  }
  return caps;
}

std::vector<std::string> trial_metric_names(Generation gen, TrialKind kind) {
  if (kind == TrialKind::kAcquisition) {
    detail::require(gen == Generation::kGen1,
                    to_string(gen) + " link does not support acquisition trials");
    return {metric_names::kAcquired, metric_names::kTimingCorrect,
            metric_names::kSyncTime};
  }
  if (gen == Generation::kGen1) return {metric_names::kAcquired};
  return {metric_names::kAcquired, metric_names::kRakeEnergyCapture,
          metric_names::kSnrEstimate};
}

bool emits_metric(Generation gen, TrialKind kind, const std::string& name) {
  for (const std::string& have : trial_metric_names(gen, kind)) {
    if (have == name) return true;
  }
  return false;
}

void validate_spec(const LinkSpec& spec) {
  require_supported(generation_caps(spec.generation()), spec.options);
}

std::unique_ptr<Link> make_link(const LinkSpec& spec, uint64_t seed) {
  validate_spec(spec);  // fail before paying for transmitter/receiver setup
  if (spec.generation() == Generation::kGen1) {
    return std::make_unique<Gen1Link>(spec.gen1(), seed);
  }
  return std::make_unique<Gen2Link>(spec.gen2(), seed);
}

// ---------------------------------------------------------------- Gen-2 ----

Gen2Link::Gen2Link(const Gen2Config& config, uint64_t seed)
    : Link(seed), config_(config), tx_(config), rx_(config, rng_) {
  caps_ = generation_caps(Generation::kGen2);
  caps_.bit_rate_hz = config_.bit_rate_hz();
}

TrialResult Gen2Link::run_packet(const TrialOptions& options, Rng& rng,
                                 const TrialContext& context) {
  require_supported(caps_, options);  // gen-2 rejects acquisition trials here
  const Gen2TrialResult trial = run_packet_full(options, rng, context);
  TrialResult out;
  out.bits = trial.bits;
  out.errors = trial.errors;
  out.set_metric(metric_names::kAcquired, trial.rx.acquired ? 1.0 : 0.0);
  out.set_metric(metric_names::kRakeEnergyCapture, trial.rx.rake_energy_capture);
  out.set_metric(metric_names::kSnrEstimate, trial.rx.snr_estimate_db);
  return out;
}

Gen2TrialResult Gen2Link::run_packet_full(const TrialOptions& options, Rng& rng,
                                          const TrialContext& context) {
  Gen2TrialResult trial;

  // Transmit. With an outer code the on-air payload is the codeword.
  const BitVec info = rng.bits(options.payload_bits);
  BitVec payload = info;
  if (options.fec.has_value()) {
    detail::require(config_.modulation == phy::Modulation::kBpsk,
                    "Gen2Link: coded mode requires BPSK");
    payload = fec::ConvEncoder(*options.fec).encode(info);
  }
  auto [wave, frame] = tx_.transmit(payload);

  // Random start delay (what acquisition must find).
  std::size_t delay = 0;
  if (options.start_delay_max_samples > 0) {
    delay = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(options.start_delay_max_samples)));
    wave.delay_samples(delay);
  }

  // Multipath: the context's resolved ensemble realization when one was
  // provided, a fresh per-trial draw otherwise.
  CplxWaveform rx_wave = std::move(wave);
  if (options.cm >= 1) {
    if (const channel::Cir* fixed = ensemble_channel_or_throw(options, context)) {
      trial.true_channel = *fixed;
    } else {
      const channel::SalehValenzuela sv(channel::cm_by_index(options.cm));
      trial.true_channel = sv.realize(rng);
    }
    rx_wave = trial.true_channel.apply(rx_wave);
  } else {
    trial.true_channel = channel::identity_cir();
  }
  // Tail pad so late fingers stay in range.
  rx_wave.pad(static_cast<std::size_t>(64e-9 * config_.analog_fs));

  // Interference.
  const double signal_power = rx_wave.power();
  if (options.interferer) {
    channel::add_cw_interferer(rx_wave, options.interferer_freq_hz, signal_power,
                               options.interferer_sir_db, rng);
  }

  // AWGN at the requested Eb/N0.
  const double n0 = channel::n0_for_ebn0(frame.energy_per_bit, options.ebn0_db);
  channel::add_awgn(rx_wave, n0, rng);

  // Receive. Coded trials bypass the MLSE hard path so the decoder gets
  // the RAKE's soft stream.
  Gen2RxOptions rx_opts;
  rx_opts.genie_timing = options.genie_timing;
  rx_opts.genie_offset = 0;  // estimator searches its window regardless
  rx_opts.run_spectral_monitor = options.run_spectral_monitor;
  rx_opts.auto_notch = options.auto_notch;
  rx_opts.noise_variance = n0;
  if (options.fec.has_value()) {
    const bool saved_mlse = config_.use_mlse;
    rx_.mutable_config().use_mlse = false;
    trial.rx = rx_.receive(rx_wave, tx_, frame, rx_opts, rng);
    rx_.mutable_config().use_mlse = saved_mlse;
  } else {
    trial.rx = rx_.receive(rx_wave, tx_, frame, rx_opts, rng);
  }

  trial.bits = trial.rx.bits_compared;
  trial.errors = trial.rx.bit_errors;

  if (options.fec.has_value() && trial.rx.acquired) {
    // Soft-decision Viterbi decoding of the codeword (payload section of
    // the soft stream; the CRC-32 tail bits are not part of the codeword).
    const std::size_t codeword_bits = payload.size();
    if (trial.rx.payload_soft.size() >= codeword_bits) {
      std::vector<double> llr(trial.rx.payload_soft.begin(),
                              trial.rx.payload_soft.begin() +
                                  static_cast<std::ptrdiff_t>(codeword_bits));
      const fec::ViterbiDecoder decoder(*options.fec);
      const BitVec decoded = decoder.decode_soft(llr);
      std::size_t errors = 0;
      const std::size_t n = std::min(decoded.size(), info.size());
      for (std::size_t i = 0; i < n; ++i) {
        if ((decoded[i] != 0) != (info[i] != 0)) ++errors;
      }
      trial.bits = info.size();
      trial.errors = errors + (info.size() - n);
    }
  }

  if (!trial.rx.acquired) {
    // A lost packet counts every bit as errored (PER-style accounting).
    trial.bits = options.fec.has_value() ? info.size() : frame.body_bits;
    trial.errors = trial.bits;
  }
  return trial;
}

// ---------------------------------------------------------------- Gen-1 ----

Gen1Link::Gen1Link(const Gen1Config& config, uint64_t seed)
    : Link(seed), config_(config), tx_(config), rx_(config, rng_) {
  caps_ = generation_caps(Generation::kGen1);
  caps_.bit_rate_hz = config_.bit_rate_hz();
}

namespace {

RealWaveform apply_gen1_channel(RealWaveform wave, const TrialOptions& options,
                                const TrialContext& context, channel::Cir* out_cir,
                                Rng& rng) {
  if (options.cm >= 1) {
    channel::Cir cir;
    if (const channel::Cir* fixed = ensemble_channel_or_throw(options, context)) {
      cir = *fixed;
    } else {
      channel::SvParams params = channel::cm_by_index(options.cm);
      params.complex_phases = false;  // real +/- polarity taps for passband
      cir = channel::SalehValenzuela(params).realize(rng);
    }
    if (out_cir != nullptr) *out_cir = cir;
    return cir.apply_real(wave);
  }
  if (out_cir != nullptr) *out_cir = channel::identity_cir();
  return wave;
}

}  // namespace

TrialResult Gen1Link::run_packet(const TrialOptions& options, Rng& rng,
                                 const TrialContext& context) {
  if (options.kind == TrialKind::kAcquisition) {
    // Acquisition trials through the generic interface: one attempt per
    // trial, a timing failure is the trial's one "error". Stop rules and
    // the BER column therefore read as attempt count / timing-failure
    // rate, and the named metrics carry the acquisition statistics.
    const AcqTrial trial = run_acquisition(options, rng, options.acq_tol_samples, context);
    TrialResult out;
    out.bits = 1;
    out.errors = trial.timing_correct ? 0 : 1;
    out.set_metric(metric_names::kAcquired, trial.acq.acquired ? 1.0 : 0.0);
    out.set_metric(metric_names::kTimingCorrect, trial.timing_correct ? 1.0 : 0.0);
    // Only detected trials have a meaningful lock time: the metric's mean
    // is the mean over the detected subset, not diluted by misses.
    if (trial.acq.acquired) out.set_metric(metric_names::kSyncTime, trial.acq.sync_time_s);
    return out;
  }
  const Gen1TrialResult trial = run_packet_full(options, rng, context);
  TrialResult out;
  out.bits = trial.bits;
  out.errors = trial.errors;
  out.set_metric(metric_names::kAcquired,
                 (options.genie_timing || trial.rx.acq.acquired) ? 1.0 : 0.0);
  return out;
}

Gen1TrialResult Gen1Link::run_packet_full(const TrialOptions& options, Rng& rng,
                                          const TrialContext& context) {
  require_supported(caps_, options);
  Gen1TrialResult trial;

  const BitVec payload = rng.bits(options.payload_bits);
  auto [wave, frame] = tx_.transmit(payload);

  std::size_t delay_frames = 0;
  if (options.start_delay_max_frames > 0) {
    delay_frames = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(options.start_delay_max_frames)));
    wave.delay_samples(delay_frames * config_.frame_samples_analog());
  }
  trial.true_offset_adc = delay_frames * config_.frame_samples_adc;

  RealWaveform rx_wave = apply_gen1_channel(std::move(wave), options, context, nullptr, rng);
  rx_wave.pad(static_cast<std::size_t>(64e-9 * config_.analog_fs));

  const double n0 = channel::n0_for_ebn0(frame.energy_per_bit, options.ebn0_db);
  channel::add_awgn(rx_wave, n0, rng);

  Gen1RxOptions rx_opts;
  rx_opts.genie_timing = options.genie_timing;
  rx_opts.genie_offset = trial.true_offset_adc;
  trial.rx = rx_.receive(rx_wave, tx_, frame, rx_opts, rng);
  trial.bits = trial.rx.bits_compared;
  trial.errors = trial.rx.bit_errors;
  if (!options.genie_timing && !trial.rx.acq.acquired) {
    trial.bits = frame.frame_bits.size();
    trial.errors = frame.frame_bits.size();
  }
  return trial;
}

Gen1Link::AcqTrial Gen1Link::run_acquisition(const TrialOptions& options,
                                             std::size_t tol_samples) {
  return run_acquisition(options, rng_, tol_samples, TrialContext{});
}

Gen1Link::AcqTrial Gen1Link::run_acquisition(const TrialOptions& options, Rng& rng,
                                             std::size_t tol_samples,
                                             const TrialContext& context) {
  require_supported(caps_, options);
  AcqTrial out;

  const BitVec payload = rng.bits(options.payload_bits);
  auto [wave, frame] = tx_.transmit(payload);

  std::size_t delay_frames = 0;
  if (options.start_delay_max_frames > 0) {
    delay_frames = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(options.start_delay_max_frames)));
    wave.delay_samples(delay_frames * config_.frame_samples_analog());
  }
  const std::size_t true_offset = delay_frames * config_.frame_samples_adc;

  RealWaveform rx_wave =
      apply_gen1_channel(std::move(wave), options, context, nullptr, rng);
  rx_wave.pad(static_cast<std::size_t>(64e-9 * config_.analog_fs));

  const double n0 = channel::n0_for_ebn0(frame.energy_per_bit, options.ebn0_db);
  channel::add_awgn(rx_wave, n0, rng);

  out.acq = rx_.acquire(rx_wave, tx_, rng);
  out.true_offset_adc = true_offset;

  // Compare timing modulo one PN period (the residual ambiguity the SFD
  // search resolves at frame level).
  const std::size_t period_samples =
      tx_.preamble_chips().size() * config_.frame_samples_adc;
  const auto diff = static_cast<std::ptrdiff_t>(out.acq.timing_offset % period_samples) -
                    static_cast<std::ptrdiff_t>(true_offset % period_samples);
  const std::size_t abs_diff =
      static_cast<std::size_t>(diff < 0 ? -diff : diff) % period_samples;
  const std::size_t wrapped = std::min(abs_diff, period_samples - abs_diff);
  out.timing_correct = out.acq.acquired && wrapped <= tol_samples;
  return out;
}

}  // namespace uwb::txrx
