#include "txrx/link.h"

#include <cmath>

#include "channel/awgn.h"
#include "channel/interferer.h"
#include "common/error.h"
#include "dsp/fast_convolve.h"
#include "dsp/fir_filter.h"
#include "fec/viterbi_decoder.h"
#include "obs/profile.h"

namespace uwb::txrx {

std::string to_string(Generation gen) {
  return gen == Generation::kGen1 ? "gen1" : "gen2";
}

TrialOptions default_options(Generation gen) {
  TrialOptions options;
  if (gen == Generation::kGen1) {
    options.payload_bits = 32;
    options.genie_timing = true;  // BER runs use genie; acquisition runs don't
  }
  return options;
}

namespace {

/// Loud capability check shared by make_link and the gen-1 run paths: a
/// scenario asking gen-1 for gen-2-only machinery is a bug, not a no-op.
void require_supported(const LinkCaps& caps, const TrialOptions& options) {
  if (!caps.supports_interferer) {
    detail::require(!options.interferer, to_string(caps.generation) +
                                             " link does not support an interferer");
  }
  if (!caps.supports_auto_notch) {
    detail::require(!options.auto_notch,
                    to_string(caps.generation) + " link does not support auto_notch");
  }
  if (!caps.supports_fec) {
    detail::require(!options.fec.has_value(),
                    to_string(caps.generation) + " link does not support an outer FEC");
  }
  if (!caps.supports_acquisition_trials) {
    detail::require(options.kind != TrialKind::kAcquisition,
                    to_string(caps.generation) +
                        " link does not support acquisition trials");
  }
  if (options.channel_source.is_ensemble()) {
    detail::require(options.channel_source.ensemble_count >= 1,
                    "ensemble channel source needs ensemble_count >= 1");
  }
  if (options.sampling.active()) {
    stats::validate(options.sampling);
    detail::require(options.kind == TrialKind::kPacket,
                    "sampling policy applies to packet trials only");
    detail::require(!options.fec.has_value(),
                    "sampling policy is incompatible with an outer FEC "
                    "(the target-bit estimator needs uncoded payload bits)");
  }
  // A spec can only ask for metrics this trial kind actually emits --
  // recording a never-emitted metric would silently produce empty columns.
  for (const std::string& name : options.record_metrics) {
    detail::require(emits_metric(caps.generation, options.kind, name),
                    "unknown metric '" + name + "' in record_metrics: a " +
                        to_string(caps.generation) +
                        (options.kind == TrialKind::kAcquisition ? " acquisition"
                                                                 : " packet") +
                        " trial does not emit it");
  }
}

/// The realization an ensemble-mode multipath trial must use. Loud when the
/// harness forgot to resolve one: drawing fresh would silently run a
/// different experiment than the spec describes.
const channel::Cir* ensemble_channel_or_throw(const TrialOptions& options,
                                              const TrialContext& context) {
  if (context.channel != nullptr) {
    // The inverse mismatch is equally silent-experiment-shaped: a resolved
    // realization alongside fresh-mode options means the caller forgot one
    // side or the other.
    detail::require(options.channel_source.is_ensemble(),
                    "TrialContext carries a channel realization but "
                    "options.channel_source is fresh-mode");
    return context.channel;
  }
  detail::require(!options.channel_source.is_ensemble() || options.cm < 1,
                  "ensemble channel source needs a resolved realization in TrialContext "
                  "(run through engine::SweepEngine, or resolve one via "
                  "engine::ChannelCache and pass it explicitly)");
  return nullptr;
}

/// The per-trial bias an importance-sampled trial must use. Loud when the
/// harness forgot to resolve one: running unbiased trials while reporting
/// importance weights would silently corrupt the estimate (same shape as
/// ensemble_channel_or_throw above).
double sampling_scale_or_throw(const TrialOptions& options, const TrialContext& context) {
  (void)options;
  detail::require(context.sampling_resolved,
                  "options.sampling is active but TrialContext carries no resolved bias "
                  "(run through engine::SweepEngine, or set noise_scale / sampling_trial "
                  "/ sampling_resolved on the context explicitly)");
  detail::require(context.noise_scale >= 1.0, "TrialContext: noise_scale must be >= 1");
  return context.noise_scale;
}

double real_dot(double a, double b) { return a * b; }
double real_dot(const cplx& a, const cplx& b) {
  return a.real() * b.real() + a.imag() * b.imag();  // Re(a * conj(b))
}

/// The one-dimensional subspace the noise tilt rides along: the target
/// bit's received-signal direction (unit energy) and where it lands in the
/// rx waveform. usable is false on a zero-energy span (e.g. the bit's whole
/// contribution fell off the end of the wave): the trial then runs at the
/// nominal distribution with weight exactly 1.
template <typename T>
struct TiltDirection {
  std::vector<T> unit;
  std::size_t offset = 0;
  bool usable = false;
};

template <typename T>
TiltDirection<T> make_tilt_direction(std::vector<T> shape, std::size_t offset,
                                     std::size_t wave_size) {
  TiltDirection<T> dir;
  if (offset >= wave_size) return dir;
  if (shape.size() > wave_size - offset) shape.resize(wave_size - offset);
  double energy = 0.0;
  for (const T& s : shape) energy += real_dot(s, s);
  if (!(energy > 0.0)) return dir;
  const double inv = 1.0 / std::sqrt(energy);
  for (T& s : shape) s *= inv;
  dir.unit = std::move(shape);
  dir.offset = offset;
  dir.usable = true;
  return dir;
}

/// Adds the extra directional noise on top of the nominal AWGN draw and
/// returns the trial's log-likelihood ratio. \p clean is the pre-AWGN
/// snapshot of the direction's span, so wave - clean along the direction is
/// exactly the noise the weight must account for. The weight is the
/// balance heuristic over the policy's whole ladder (see
/// stats::mixture_log_weight): every rung -- including the untilted 1.0
/// rung -- reports the same weight function of z, which keeps weights
/// bounded by the rung count and keeps error mechanisms outside the tilt
/// direction measurable. Always consumes one Gaussian draw so the trial's
/// draw count does not depend on the scale or on channel luck.
template <typename T>
double apply_noise_tilt(Waveform<T>& wave, const std::vector<T>& clean,
                        const TiltDirection<T>& dir, double sigma2,
                        const stats::SamplingPolicy& policy, double scale, Rng& rng) {
  if (!dir.usable) {
    rng.gaussian(0.0, 0.0);
    return 0.0;
  }
  double z = 0.0;
  for (std::size_t i = 0; i < dir.unit.size(); ++i) {
    z += real_dot(wave[dir.offset + i] - clean[i], dir.unit[i]);
  }
  const double extra = rng.gaussian(0.0, stats::tilt_extra_stddev(sigma2, scale));
  if (extra != 0.0) {
    for (std::size_t i = 0; i < dir.unit.size(); ++i) {
      wave[dir.offset + i] += extra * dir.unit[i];
    }
  }
  return stats::mixture_log_weight(z + extra, sigma2, stats::sampling_ladder(policy));
}

}  // namespace

channel::SvParams ensemble_sv_params(int cm, Generation gen) {
  channel::SvParams params = channel::cm_by_index(cm);
  params.complex_phases = gen == Generation::kGen2;
  return params;
}

// ------------------------------------------------------------- LinkSpec ----

LinkSpec LinkSpec::for_gen1(Gen1Config config) {
  return for_gen1(std::move(config), default_options(Generation::kGen1));
}

LinkSpec LinkSpec::for_gen1(Gen1Config config, TrialOptions options) {
  LinkSpec spec;
  spec.config = std::move(config);
  spec.options = std::move(options);
  return spec;
}

LinkSpec LinkSpec::for_gen2(Gen2Config config) {
  return for_gen2(std::move(config), default_options(Generation::kGen2));
}

LinkSpec LinkSpec::for_gen2(Gen2Config config, TrialOptions options) {
  LinkSpec spec;
  spec.config = std::move(config);
  spec.options = std::move(options);
  return spec;
}

LinkCaps generation_caps(Generation gen) {
  LinkCaps caps;
  caps.generation = gen;
  if (gen == Generation::kGen1) {
    caps.complex_baseband = false;
    caps.supports_interferer = false;
    caps.supports_auto_notch = false;
    caps.supports_fec = false;
    caps.supports_acquisition_trials = true;
  } else {
    caps.complex_baseband = true;
    caps.supports_interferer = true;
    caps.supports_auto_notch = true;
    caps.supports_fec = true;
    caps.supports_acquisition_trials = false;
  }
  // Derived, not hand-listed: the advertised vocabulary is the union of
  // what the supported trial kinds emit, so it cannot drift from
  // trial_metric_names.
  caps.metric_names = trial_metric_names(gen, TrialKind::kPacket);
  if (caps.supports_acquisition_trials) {
    for (std::string& name : trial_metric_names(gen, TrialKind::kAcquisition)) {
      if (!emits_metric(gen, TrialKind::kPacket, name)) {
        caps.metric_names.push_back(std::move(name));
      }
    }
  }
  return caps;
}

std::vector<std::string> trial_metric_names(Generation gen, TrialKind kind) {
  if (kind == TrialKind::kAcquisition) {
    detail::require(gen == Generation::kGen1,
                    to_string(gen) + " link does not support acquisition trials");
    return {metric_names::kAcquired, metric_names::kTimingCorrect,
            metric_names::kSyncTime};
  }
  if (gen == Generation::kGen1) return {metric_names::kAcquired, metric_names::kIsLlr};
  return {metric_names::kAcquired,          metric_names::kRakeEnergyCapture,
          metric_names::kSnrEstimate,       metric_names::kInterfererDetected,
          metric_names::kInterfererPom,     metric_names::kInterfererFreqErr,
          metric_names::kIsLlr};
}

bool emits_metric(Generation gen, TrialKind kind, const std::string& name) {
  for (const std::string& have : trial_metric_names(gen, kind)) {
    if (have == name) return true;
  }
  return false;
}

void validate_spec(const LinkSpec& spec) {
  require_supported(generation_caps(spec.generation()), spec.options);
}

std::unique_ptr<Link> make_link(const LinkSpec& spec, uint64_t seed) {
  validate_spec(spec);  // fail before paying for transmitter/receiver setup
  if (spec.generation() == Generation::kGen1) {
    return std::make_unique<Gen1Link>(spec.gen1(), seed);
  }
  return std::make_unique<Gen2Link>(spec.gen2(), seed);
}

// ---------------------------------------------------------------- Gen-2 ----

Gen2Link::Gen2Link(const Gen2Config& config, uint64_t seed)
    : Link(seed), config_(config), tx_(config), rx_(config, rng_) {
  caps_ = generation_caps(Generation::kGen2);
  caps_.bit_rate_hz = config_.bit_rate_hz();
}

TrialResult Gen2Link::run_packet(const TrialOptions& options, Rng& rng,
                                 const TrialContext& context) {
  require_supported(caps_, options);  // gen-2 rejects acquisition trials here
  const Gen2TrialResult trial = run_packet_full(options, rng, context);
  TrialResult out;
  out.bits = trial.bits;
  out.errors = trial.errors;
  out.set_metric(metric_names::kAcquired, trial.rx.acquired ? 1.0 : 0.0);
  out.set_metric(metric_names::kRakeEnergyCapture, trial.rx.rake_energy_capture);
  out.set_metric(metric_names::kSnrEstimate, trial.rx.snr_estimate_db);
  if (options.run_spectral_monitor) {
    out.set_metric(metric_names::kInterfererDetected,
                   trial.rx.interferer.detected ? 1.0 : 0.0);
    out.set_metric(metric_names::kInterfererPom,
                   trial.rx.interferer.peak_over_median_db);
    // A frequency error only means something when there was a tone to find
    // and the monitor claimed to find it (mean over the detected subset,
    // same convention as sync_time_s).
    if (options.interferer && trial.rx.interferer.detected) {
      out.set_metric(metric_names::kInterfererFreqErr,
                     std::abs(trial.rx.interferer.frequency_hz -
                              options.interferer_freq_hz));
    }
  }
  if (trial.weighted) out.set_metric(metric_names::kIsLlr, trial.is_llr);
  return out;
}

Gen2TrialResult Gen2Link::run_packet_full(const TrialOptions& options, Rng& rng,
                                          const TrialContext& context) {
  Gen2TrialResult trial;

  // Transmit. With an outer code the on-air payload is the codeword.
  const BitVec info = rng.bits(options.payload_bits);
  BitVec payload = info;
  if (options.fec.has_value()) {
    detail::require(config_.modulation == phy::Modulation::kBpsk,
                    "Gen2Link: coded mode requires BPSK");
    payload = fec::ConvEncoder(*options.fec).encode(info);
  }
  obs::StageTimer tx_timer(obs::Stage::kTxModulate);
  auto [wave, frame] = tx_.transmit(payload);
  tx_timer.add_samples(wave.size());
  tx_timer.finish();

  // Random start delay (what acquisition must find).
  std::size_t delay = 0;
  if (options.start_delay_max_samples > 0) {
    delay = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(options.start_delay_max_samples)));
    wave.delay_samples(delay);
  }

  // Multipath: the context's resolved ensemble realization when one was
  // provided, a fresh per-trial draw otherwise.
  CplxWaveform rx_wave = std::move(wave);
  if (options.cm >= 1) {
    if (const channel::Cir* fixed = ensemble_channel_or_throw(options, context)) {
      trial.true_channel = *fixed;
    } else {
      const channel::SalehValenzuela sv(channel::cm_by_index(options.cm));
      trial.true_channel = sv.realize(rng);
    }
    obs::StageTimer ch_timer(obs::Stage::kChannelConvolve);
    rx_wave = trial.true_channel.apply(rx_wave);
    ch_timer.add_samples(rx_wave.size());
    ch_timer.finish();
  } else {
    trial.true_channel = channel::identity_cir();
  }
  // Tail pad so late fingers stay in range.
  rx_wave.pad(static_cast<std::size_t>(64e-9 * config_.analog_fs));

  // Importance sampling: isolate the target payload bit's received-signal
  // direction (the prototype pulse through the same channel realization,
  // landed where the bit's symbol starts) before any noise is drawn. The
  // target bit is stratified by the global trial index, so the choice is
  // independent of worker count and shard layout.
  const bool tilt_active = options.sampling.active();
  std::size_t target_bit = 0;
  TiltDirection<cplx> tilt;
  if (tilt_active) {
    detail::require(config_.modulation == phy::Modulation::kBpsk,
                    "Gen2Link: sampling policy requires BPSK payload modulation");
    detail::require(!options.fec.has_value(),
                    "Gen2Link: sampling policy is incompatible with an outer FEC");
    (void)sampling_scale_or_throw(options, context);
    target_bit = context.sampling_trial % frame.payload.size();
    const RealWaveform& proto = tx_.prototype();
    CplxVec shape(proto.size());
    for (std::size_t i = 0; i < proto.size(); ++i) shape[i] = cplx(proto[i], 0.0);
    if (options.cm >= 1) {
      const CplxWaveform filtered =
          trial.true_channel.apply(CplxWaveform(std::move(shape), config_.analog_fs));
      shape = filtered.samples();
    }
    const std::size_t bit_offset =
        delay + (frame.overhead_symbols + target_bit) * frame.samples_per_bit;
    tilt = make_tilt_direction<cplx>(std::move(shape), bit_offset, rx_wave.size());
  }

  // Interference.
  const double signal_power = rx_wave.power();
  if (options.interferer) {
    channel::add_cw_interferer(rx_wave, options.interferer_freq_hz, signal_power,
                               options.interferer_sir_db, rng);
  }

  // AWGN at the requested Eb/N0, tilted along the target bit's direction
  // when a sampling policy is active (variance n0/2 per rail -> the tilt's
  // sigma2; z in the weight is the realized noise along the direction).
  const double n0 = channel::n0_for_ebn0(frame.energy_per_bit, options.ebn0_db);
  double log_weight = 0.0;
  {
    CplxVec clean;
    if (tilt_active && tilt.usable) {
      const auto first = static_cast<std::ptrdiff_t>(tilt.offset);
      clean.assign(rx_wave.samples().begin() + first,
                   rx_wave.samples().begin() + first +
                       static_cast<std::ptrdiff_t>(tilt.unit.size()));
    }
    channel::add_awgn(rx_wave, n0, rng);
    if (tilt_active) {
      log_weight = apply_noise_tilt(rx_wave, clean, tilt, 0.5 * n0, options.sampling,
                                    context.noise_scale, rng);
    }
  }

  // Receive. Coded trials bypass the MLSE hard path so the decoder gets
  // the RAKE's soft stream.
  Gen2RxOptions rx_opts;
  rx_opts.genie_timing = options.genie_timing;
  rx_opts.genie_offset = 0;  // estimator searches its window regardless
  rx_opts.run_spectral_monitor = options.run_spectral_monitor;
  rx_opts.auto_notch = options.auto_notch;
  rx_opts.noise_variance = n0;
  if (options.fec.has_value()) {
    const bool saved_mlse = config_.use_mlse;
    rx_.mutable_config().use_mlse = false;
    trial.rx = rx_.receive(rx_wave, tx_, frame, rx_opts, rng);
    rx_.mutable_config().use_mlse = saved_mlse;
  } else {
    trial.rx = rx_.receive(rx_wave, tx_, frame, rx_opts, rng);
  }

  trial.bits = trial.rx.bits_compared;
  trial.errors = trial.rx.bit_errors;

  if (options.fec.has_value() && trial.rx.acquired) {
    // Soft-decision Viterbi decoding of the codeword (payload section of
    // the soft stream; the CRC-32 tail bits are not part of the codeword).
    const std::size_t codeword_bits = payload.size();
    if (trial.rx.payload_soft.size() >= codeword_bits) {
      std::vector<double> llr(trial.rx.payload_soft.begin(),
                              trial.rx.payload_soft.begin() +
                                  static_cast<std::ptrdiff_t>(codeword_bits));
      const fec::ViterbiDecoder decoder(*options.fec);
      const BitVec decoded = decoder.decode_soft(llr);
      std::size_t errors = 0;
      const std::size_t n = std::min(decoded.size(), info.size());
      for (std::size_t i = 0; i < n; ++i) {
        if ((decoded[i] != 0) != (info[i] != 0)) ++errors;
      }
      trial.bits = info.size();
      trial.errors = errors + (info.size() - n);
    }
  }

  if (!trial.rx.acquired) {
    // A lost packet counts every bit as errored (PER-style accounting).
    trial.bits = options.fec.has_value() ? info.size() : frame.body_bits;
    trial.errors = trial.bits;
  }

  if (tilt_active) {
    // Weighted accounting: the trial measures its one target bit (the
    // others saw a biased-but-unweighted draw only through the tilt's
    // leakage into their matched filters, which the 1-D construction keeps
    // exactly zero-mean). A lost packet errors the target bit too.
    trial.weighted = true;
    trial.is_llr = log_weight;
    std::size_t err = 1;
    if (trial.rx.acquired && target_bit < trial.rx.payload.size()) {
      const std::size_t body_start = frame.frame_bits.size() - frame.body_bits;
      const bool tx_bit = frame.frame_bits[body_start + target_bit] != 0;
      err = ((trial.rx.payload[target_bit] != 0) != tx_bit) ? 1 : 0;
    }
    trial.bits = 1;
    trial.errors = err;
  }
  return trial;
}

// ---------------------------------------------------------------- Gen-1 ----

Gen1Link::Gen1Link(const Gen1Config& config, uint64_t seed)
    : Link(seed), config_(config), tx_(config), rx_(config, rng_) {
  caps_ = generation_caps(Generation::kGen1);
  caps_.bit_rate_hz = config_.bit_rate_hz();
}

const RealVec& Gen1Link::composite_kernel(const channel::Cir& cir) {
  if (!g_kernel_.empty() && cir.taps() == g_key_taps_) return g_kernel_;
  const CplxVec hc = cir.sampled(config_.analog_fs);
  RealVec hr(hc.size());
  for (std::size_t i = 0; i < hc.size(); ++i) hr[i] = hc[i].real();
  g_kernel_ = dsp::convolve(tx_.prototype().samples(), hr);
  g_key_taps_ = cir.taps();
  // The kernel itself stays double precision (computed once per
  // realization); the per-packet scatter reads the float mirror.
  g_kernel_f_.resize(g_kernel_.size());
  for (std::size_t i = 0; i < g_kernel_.size(); ++i) {
    g_kernel_f_[i] = static_cast<float>(g_kernel_[i]);
  }
  return g_kernel_;
}

const dsp::AlignedVec<float>& Gen1Link::prototype_f() {
  const RealVec& proto = tx_.prototype().samples();
  if (proto_f_.size() != proto.size()) {
    proto_f_.resize(proto.size());
    for (std::size_t i = 0; i < proto.size(); ++i) {
      proto_f_[i] = static_cast<float>(proto[i]);
    }
  }
  return proto_f_;
}

std::span<const float> Gen1Link::scatter_and_noise(const std::vector<double>& amplitudes,
                                                   std::size_t delay_frames,
                                                   const dsp::AlignedVec<float>& kernel,
                                                   double n0, Rng& rng) {
  const std::size_t frame_samples = config_.frame_samples_analog();
  const std::size_t delay_samples = delay_frames * frame_samples;
  const std::size_t out_len =
      delay_samples + frame_samples * amplitudes.size() + kernel.size();
  // Tail pad so late fingers stay in range (the dense path's rx_wave.pad).
  const auto pad = static_cast<std::size_t>(64e-9 * config_.analog_fs);
  {
    const obs::StageTimer timer(obs::Stage::kChannelConvolve, out_len);
    rx_arena_.assign_zero(out_len + pad);
    const float* src = kernel.data();
    const std::size_t g_len = kernel.size();
    for (std::size_t s = 0; s < amplitudes.size(); ++s) {
      const auto a = static_cast<float>(amplitudes[s]);
      float* dst = rx_arena_.data() + delay_samples + s * frame_samples;
      for (std::size_t i = 0; i < g_len; ++i) dst[i] += a * src[i];
    }
  }
  channel::add_awgn(rx_arena_.data(), rx_arena_.size(), n0, rng);
  return {rx_arena_.data(), rx_arena_.size()};
}

namespace {

/// The multipath realization a gen-1 trial must use (cm >= 1 only): the
/// context's resolved ensemble realization, or a fresh per-trial draw.
channel::Cir resolve_gen1_cir(const TrialOptions& options, const TrialContext& context,
                              Rng& rng) {
  if (const channel::Cir* fixed = ensemble_channel_or_throw(options, context)) {
    return *fixed;
  }
  channel::SvParams params = channel::cm_by_index(options.cm);
  params.complex_phases = false;  // real +/- polarity taps for passband
  return channel::SalehValenzuela(params).realize(rng);
}

RealWaveform apply_gen1_channel(RealWaveform wave, const TrialOptions& options,
                                const TrialContext& context, channel::Cir* out_cir,
                                Rng& rng) {
  if (options.cm >= 1) {
    const channel::Cir cir = resolve_gen1_cir(options, context, rng);
    if (out_cir != nullptr) *out_cir = cir;
    obs::StageTimer ch_timer(obs::Stage::kChannelConvolve);
    RealWaveform out = cir.apply_real(wave);
    ch_timer.add_samples(out.size());
    ch_timer.finish();
    return out;
  }
  if (out_cir != nullptr) *out_cir = channel::identity_cir();
  return wave;
}

/// Sparse-train channel apply: y[n] = sum_k a_k * g[n - delay - k*frame].
/// Mathematically identical to convolving the dense train with the CIR
/// (convolution distributes over the slot sum); the output length matches
/// the dense path exactly: delay + frame*slots + |prototype| + |h| - 1
/// == delay + frame*slots + |g|.
RealWaveform apply_gen1_channel_sparse(const std::vector<double>& amplitudes,
                                       std::size_t frame_samples,
                                       std::size_t delay_samples, const RealVec& g,
                                       double fs) {
  const std::size_t out_len =
      delay_samples + frame_samples * amplitudes.size() + g.size();
  const obs::StageTimer timer(obs::Stage::kChannelConvolve, out_len);
  RealVec y(out_len, 0.0);
  const std::size_t g_len = g.size();
  const double* src = g.data();
  for (std::size_t s = 0; s < amplitudes.size(); ++s) {
    const double a = amplitudes[s];
    double* dst = y.data() + delay_samples + s * frame_samples;
    for (std::size_t i = 0; i < g_len; ++i) dst[i] += a * src[i];
  }
  return {std::move(y), fs};
}

}  // namespace

TrialResult Gen1Link::run_packet(const TrialOptions& options, Rng& rng,
                                 const TrialContext& context) {
  if (options.kind == TrialKind::kAcquisition) {
    // Acquisition trials through the generic interface: one attempt per
    // trial, a timing failure is the trial's one "error". Stop rules and
    // the BER column therefore read as attempt count / timing-failure
    // rate, and the named metrics carry the acquisition statistics.
    const AcqTrial trial = run_acquisition(options, rng, options.acq_tol_samples, context);
    TrialResult out;
    out.bits = 1;
    out.errors = trial.timing_correct ? 0 : 1;
    out.set_metric(metric_names::kAcquired, trial.acq.acquired ? 1.0 : 0.0);
    out.set_metric(metric_names::kTimingCorrect, trial.timing_correct ? 1.0 : 0.0);
    // Only detected trials have a meaningful lock time: the metric's mean
    // is the mean over the detected subset, not diluted by misses.
    if (trial.acq.acquired) out.set_metric(metric_names::kSyncTime, trial.acq.sync_time_s);
    return out;
  }
  const Gen1TrialResult trial = run_packet_full(options, rng, context);
  TrialResult out;
  out.bits = trial.bits;
  out.errors = trial.errors;
  out.set_metric(metric_names::kAcquired,
                 (options.genie_timing || trial.rx.acq.acquired) ? 1.0 : 0.0);
  if (trial.weighted) out.set_metric(metric_names::kIsLlr, trial.is_llr);
  return out;
}

Gen1TrialResult Gen1Link::run_packet_full(const TrialOptions& options, Rng& rng,
                                          const TrialContext& context) {
  require_supported(caps_, options);
  Gen1TrialResult trial;

  const BitVec payload = rng.bits(options.payload_bits);

  // With the fast-convolve policy on, the dense ~98%-zeros waveform is
  // never synthesized: the transmitter emits per-frame amplitudes and the
  // channel (identity for AWGN-only trials) lands as shift-adds of the
  // composite kernel straight into the single-precision sample arena,
  // where noise synthesis and the receiver also run. Importance-sampled
  // trials stay on the double-waveform path: the tilt machinery snapshots
  // and re-projects the waveform around the noise draw. The Rng draw order
  // (payload bits, delay, fresh-realization draws, then noise) is shared
  // by every path, so the pre-noise signal is the same experiment under
  // any policy; the float path's noise realization differs by design (it
  // runs the dedicated single-precision sampler, see channel/awgn.h).
  const bool tilt_active = options.sampling.active();
  const bool float_path = dsp::fast_convolve_enabled() && !tilt_active;
  const bool sparse_channel =
      !float_path && options.cm >= 1 && dsp::fast_convolve_enabled();

  TxFrame frame;
  RealWaveform wave;  // dense path only
  Gen1Train train;    // float / sparse path only
  {
    obs::StageTimer tx_timer(obs::Stage::kTxModulate);
    if (float_path || sparse_channel) {
      train = tx_.transmit_train(payload);
      frame = std::move(train.frame);
      tx_timer.add_samples(train.amplitudes.size());
    } else {
      auto wf = tx_.transmit(payload);
      wave = std::move(wf.first);
      frame = std::move(wf.second);
      tx_timer.add_samples(wave.size());
    }
  }

  std::size_t delay_frames = 0;
  if (options.start_delay_max_frames > 0) {
    delay_frames = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(options.start_delay_max_frames)));
    if (!float_path && !sparse_channel) {
      wave.delay_samples(delay_frames * config_.frame_samples_analog());
    }
  }
  trial.true_offset_adc = delay_frames * config_.frame_samples_adc;

  const double n0 = channel::n0_for_ebn0(frame.energy_per_bit, options.ebn0_db);
  Gen1RxOptions rx_opts;
  rx_opts.genie_timing = options.genie_timing;
  rx_opts.genie_offset = trial.true_offset_adc;

  double log_weight = 0.0;
  std::size_t target_bit = 0;
  if (float_path) {
    const dsp::AlignedVec<float>* g = &prototype_f();
    if (options.cm >= 1) {
      const channel::Cir cir = resolve_gen1_cir(options, context, rng);
      composite_kernel(cir);  // refreshes the float mirror on a new realization
      g = &g_kernel_f_;
    }
    const std::span<const float> rx_span =
        scatter_and_noise(train.amplitudes, delay_frames, *g, n0, rng);
    trial.rx = rx_.receive(rx_span, config_.analog_fs, tx_, frame, rx_opts, rng);
  } else {
    channel::Cir cir = channel::identity_cir();
    RealWaveform rx_wave;
    if (sparse_channel) {
      cir = resolve_gen1_cir(options, context, rng);
      rx_wave = apply_gen1_channel_sparse(
          train.amplitudes, config_.frame_samples_analog(),
          delay_frames * config_.frame_samples_analog(), composite_kernel(cir),
          config_.analog_fs);
    } else {
      rx_wave = apply_gen1_channel(std::move(wave), options, context, &cir, rng);
    }
    rx_wave.pad(static_cast<std::size_t>(64e-9 * config_.analog_fs));

    // Importance sampling: the target data bit's received contribution is
    // its pulses_per_bit spread-scrambled pulses through the same channel
    // realization, landed after the preamble and the start delay.
    TiltDirection<double> tilt;
    if (tilt_active) {
      (void)sampling_scale_or_throw(options, context);
      target_bit = context.sampling_trial % frame.frame_bits.size();
      const RealWaveform& proto = tx_.prototype();
      const std::vector<double>& spread = tx_.spread_chips();
      const std::size_t frame_samples = config_.frame_samples_analog();
      const auto ppb = static_cast<std::size_t>(config_.pulses_per_bit);
      std::vector<double> shape((ppb - 1) * frame_samples + proto.size(), 0.0);
      for (std::size_t k = 0; k < ppb; ++k) {
        const double chip = spread[k % spread.size()];
        for (std::size_t i = 0; i < proto.size(); ++i) {
          shape[k * frame_samples + i] += chip * proto[i];
        }
      }
      if (options.cm >= 1) {
        const RealWaveform filtered =
            cir.apply_real(RealWaveform(std::move(shape), config_.analog_fs));
        shape = filtered.samples();
      }
      const std::size_t bit_offset =
          (delay_frames + tx_.preamble_frames() + target_bit * ppb) * frame_samples;
      tilt = make_tilt_direction<double>(std::move(shape), bit_offset, rx_wave.size());
    }

    {
      std::vector<double> clean;
      if (tilt_active && tilt.usable) {
        const auto first = static_cast<std::ptrdiff_t>(tilt.offset);
        clean.assign(rx_wave.samples().begin() + first,
                     rx_wave.samples().begin() + first +
                         static_cast<std::ptrdiff_t>(tilt.unit.size()));
      }
      channel::add_awgn(rx_wave, n0, rng);
      if (tilt_active) {
        log_weight = apply_noise_tilt(rx_wave, clean, tilt, 0.5 * n0, options.sampling,
                                      context.noise_scale, rng);
      }
    }

    trial.rx = rx_.receive(rx_wave, tx_, frame, rx_opts, rng);
  }
  trial.bits = trial.rx.bits_compared;
  trial.errors = trial.rx.bit_errors;
  if (!options.genie_timing && !trial.rx.acq.acquired) {
    trial.bits = frame.frame_bits.size();
    trial.errors = frame.frame_bits.size();
  }

  if (tilt_active) {
    trial.weighted = true;
    trial.is_llr = log_weight;
    std::size_t err = 1;  // lost packet: the target bit errored with the rest
    if ((options.genie_timing || trial.rx.acq.acquired) &&
        target_bit < trial.rx.data_bits.size()) {
      const bool tx_bit = frame.frame_bits[target_bit] != 0;
      err = ((trial.rx.data_bits[target_bit] != 0) != tx_bit) ? 1 : 0;
    }
    trial.bits = 1;
    trial.errors = err;
  }
  return trial;
}

Gen1Link::AcqTrial Gen1Link::run_acquisition(const TrialOptions& options,
                                             std::size_t tol_samples) {
  return run_acquisition(options, rng_, tol_samples, TrialContext{});
}

Gen1Link::AcqTrial Gen1Link::run_acquisition(const TrialOptions& options, Rng& rng,
                                             std::size_t tol_samples,
                                             const TrialContext& context) {
  require_supported(caps_, options);
  AcqTrial out;

  const BitVec payload = rng.bits(options.payload_bits);
  // Same path split as run_packet_full (acquisition trials never tilt).
  const bool float_path = dsp::fast_convolve_enabled();

  TxFrame frame;
  RealWaveform wave;  // dense path only
  Gen1Train train;    // float path only
  {
    obs::StageTimer tx_timer(obs::Stage::kTxModulate);
    if (float_path) {
      train = tx_.transmit_train(payload);
      frame = std::move(train.frame);
      tx_timer.add_samples(train.amplitudes.size());
    } else {
      auto wf = tx_.transmit(payload);
      wave = std::move(wf.first);
      frame = std::move(wf.second);
      tx_timer.add_samples(wave.size());
    }
  }

  std::size_t delay_frames = 0;
  if (options.start_delay_max_frames > 0) {
    delay_frames = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(options.start_delay_max_frames)));
    if (!float_path) wave.delay_samples(delay_frames * config_.frame_samples_analog());
  }
  const std::size_t true_offset = delay_frames * config_.frame_samples_adc;

  const double n0 = channel::n0_for_ebn0(frame.energy_per_bit, options.ebn0_db);
  if (float_path) {
    const dsp::AlignedVec<float>* g = &prototype_f();
    if (options.cm >= 1) {
      const channel::Cir cir = resolve_gen1_cir(options, context, rng);
      composite_kernel(cir);
      g = &g_kernel_f_;
    }
    const std::span<const float> rx_span =
        scatter_and_noise(train.amplitudes, delay_frames, *g, n0, rng);
    out.acq = rx_.acquire(rx_span, config_.analog_fs, tx_, rng);
  } else {
    RealWaveform rx_wave = apply_gen1_channel(std::move(wave), options, context, nullptr, rng);
    rx_wave.pad(static_cast<std::size_t>(64e-9 * config_.analog_fs));
    channel::add_awgn(rx_wave, n0, rng);
    out.acq = rx_.acquire(rx_wave, tx_, rng);
  }
  out.true_offset_adc = true_offset;

  // Compare timing modulo one PN period (the residual ambiguity the SFD
  // search resolves at frame level).
  const std::size_t period_samples =
      tx_.preamble_chips().size() * config_.frame_samples_adc;
  const auto diff = static_cast<std::ptrdiff_t>(out.acq.timing_offset % period_samples) -
                    static_cast<std::ptrdiff_t>(true_offset % period_samples);
  const std::size_t abs_diff =
      static_cast<std::size_t>(diff < 0 ? -diff : diff) % period_samples;
  const std::size_t wrapped = std::min(abs_diff, period_samples - abs_diff);
  out.timing_correct = out.acq.acquired && wrapped <= tol_samples;
  return out;
}

}  // namespace uwb::txrx
