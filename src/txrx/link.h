#pragma once
/// \file link.h
/// \brief The unified link-simulation API: transmitter -> channel (multipath
///        / interferer / AWGN) -> receiver, with per-packet trial results.
///
/// Both of the paper's transceiver generations -- the Section-2 baseband SoC
/// (Gen1Link) and the Section-3 direct-conversion 100 Mbps chip (Gen2Link)
/// -- implement one abstract Link interface: run_packet(TrialOptions, Rng)
/// plus capability queries. Callers that only need "run a packet, count the
/// errors" (the sweep engine, the CLI, generic benches) work against Link
/// and a declarative LinkSpec; callers that inspect generation-specific
/// diagnostics use the concrete classes' run_packet_full / run_acquisition.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "channel/saleh_valenzuela.h"
#include "common/rng.h"
#include "dsp/aligned.h"
#include "fec/convolutional.h"
#include "stats/sampling.h"
#include "txrx/receiver_gen1.h"
#include "txrx/receiver_gen2.h"
#include "txrx/transceiver_config.h"
#include "txrx/transmitter.h"

namespace uwb::txrx {

/// The paper's two transceiver generations.
enum class Generation { kGen1, kGen2 };

/// Human-readable generation name ("gen1" / "gen2").
std::string to_string(Generation gen);

/// Where a trial's multipath realization comes from.
///
/// kFresh draws a new Saleh-Valenzuela realization from the trial Rng
/// inside run_packet (the historical behavior). kEnsemble indexes into a
/// precomputed ensemble keyed by (canonical SvParams fingerprint,
/// ensemble_seed, ensemble_count): trial i uses realization
/// `i % ensemble_count`, resolved by the sweep engine (or any caller) and
/// handed to run_packet through TrialContext. Running an ensemble-mode
/// trial on a multipath channel *without* a resolved realization throws --
/// the spec promised shared channels, silently drawing fresh ones would be
/// a different experiment. See engine/channel_cache.h.
struct ChannelSource {
  enum class Mode { kFresh, kEnsemble };

  /// Default base seed for ensembles (any fixed value works; what matters
  /// is that it is spec content, identical across shards and hosts).
  static constexpr uint64_t kDefaultEnsembleSeed = 0xC1A0'5eed'0000'0001ULL;

  Mode mode = Mode::kFresh;
  uint64_t ensemble_seed = kDefaultEnsembleSeed;
  std::size_t ensemble_count = 0;  ///< must be >= 1 in ensemble mode

  [[nodiscard]] bool is_ensemble() const noexcept { return mode == Mode::kEnsemble; }
  [[nodiscard]] bool operator==(const ChannelSource&) const = default;
};

/// Runtime-only companion to TrialOptions: state resolved per trial by the
/// harness, never serialized: the ensemble realization the trial must use
/// (null = draw fresh, the default) and -- when the spec carries an active
/// stats::SamplingPolicy -- the resolved importance-sampling bias. Links
/// throw when options ask for sampling but no harness resolved the bias
/// (sampling_resolved stays false): running such a trial unweighted would
/// silently be a different experiment. The sweep engine resolves both as
/// pure functions of the spec and the global trial index.
struct TrialContext {
  const channel::Cir* channel = nullptr;
  double noise_scale = 1.0;       ///< tilt scale for this trial (>= 1)
  std::size_t sampling_trial = 0; ///< global trial index (stratifies the target bit)
  bool sampling_resolved = false; ///< harness filled the two fields above
};

/// The S-V parameter set an ensemble-mode trial keys its ensemble on: the
/// CM profile in the generation's tap convention (complex phases at gen-2
/// complex baseband, +/-1 polarity for the gen-1 real passband). The ONE
/// cm -> SvParams mapping every ensemble producer and consumer must share
/// -- precompute writes store files under these keys, the sweep engine
/// looks them up. \throws InvalidArgument for cm outside 1..4.
[[nodiscard]] channel::SvParams ensemble_sv_params(int cm, Generation gen);

/// What one trial measures. kPacket transmits and demodulates a payload
/// (BER accounting); kAcquisition runs the dedicated acquisition search
/// only -- the trial's bits/errors then count acquisition *attempts* and
/// timing failures (bits = 1, errors = timing_correct ? 0 : 1), so the
/// standard error-count stopping rules and the BER column read as attempt
/// count and timing-failure rate. Only generations whose LinkCaps set
/// supports_acquisition_trials accept kAcquisition.
enum class TrialKind { kPacket, kAcquisition };

/// Canonical names of the scalar metrics the links emit on TrialResult.
/// One shared vocabulary: specs name these in record_metrics, stop rules
/// target them, result docs key their per-metric statistics on them.
namespace metric_names {
inline constexpr const char* kAcquired = "acquired";                     ///< 0/1
inline constexpr const char* kTimingCorrect = "timing_correct";          ///< 0/1
inline constexpr const char* kSyncTime = "sync_time_s";                  ///< detected trials only
inline constexpr const char* kRakeEnergyCapture = "rake_energy_capture"; ///< gen-2
inline constexpr const char* kSnrEstimate = "snr_estimate_db";           ///< gen-2
/// Importance sampling: the trial's log-likelihood ratio (emitted only
/// when the spec's SamplingPolicy is active; the engine folds it into the
/// weighted BER estimate).
inline constexpr const char* kIsLlr = "is_llr";
/// Spectral monitor verdict, 0/1 (gen-2 packet trials that ran the monitor).
inline constexpr const char* kInterfererDetected = "interferer_detected";
/// Monitor peak-over-median (dB); emitted whenever the monitor ran.
inline constexpr const char* kInterfererPom = "interferer_peak_over_median_db";
/// |estimated - true| CW frequency error (Hz); detected interferer trials only.
inline constexpr const char* kInterfererFreqErr = "interferer_freq_err_hz";
}  // namespace metric_names

/// Channel/impairment options for one packet trial, shared by both
/// generations. Field defaults match the gen-2 100 Mbps link benches;
/// default_options(Generation::kGen1) returns the gen-1 BER-run defaults
/// (short payload, genie timing). Options a generation cannot honor
/// (interferer / auto_notch / fec on gen-1, acquisition trials on gen-2)
/// make run_packet throw -- see LinkCaps for querying support up front.
struct TrialOptions {
  TrialKind kind = TrialKind::kPacket;  ///< packet (BER) vs acquisition trial
  int cm = 0;                    ///< 0 = AWGN only, 1..4 = 802.15.3a CM1..CM4
  ChannelSource channel_source;  ///< fresh draw (default) vs shared ensemble
  double ebn0_db = 10.0;
  std::size_t payload_bits = 200;
  bool genie_timing = false;     ///< BER-only runs skip acquisition

  /// kAcquisition: found timing counts as correct within +/- this many ADC
  /// samples of the true offset (modulo one PN period).
  std::size_t acq_tol_samples = 2;

  /// Which of the link's metrics to record (empty = all the trial emits).
  /// Names must come from the trial kind's vocabulary -- see
  /// trial_metric_names; validate_spec and the spec reader reject unknown
  /// names loudly.
  std::vector<std::string> record_metrics;

  /// Random TX start, what acquisition must find. Gen-2 draws a delay in
  /// analog samples, gen-1 in PRF frames; both fields carry their
  /// generation's canonical default so one struct serves either link.
  std::size_t start_delay_max_samples = 32;  ///< gen-2 (analog rate)
  std::size_t start_delay_max_frames = 64;   ///< gen-1 (PRF frames)

  // Gen-2-only impairments / mitigations.
  bool interferer = false;
  double interferer_sir_db = 0.0;     ///< signal-to-interference ratio
  double interferer_freq_hz = 80e6;   ///< baseband offset of the CW tone
  bool auto_notch = false;            ///< spectral monitor drives the notch
  bool run_spectral_monitor = true;

  /// Outer convolutional code (gen-2 only). When set, the payload is
  /// encoded before transmission and soft-Viterbi decoded from the RAKE
  /// soft outputs (requires BPSK and disables the MLSE hard path for the
  /// trial). Note that energy accounting stays per *coded* bit: at equal
  /// options.ebn0_db a rate-1/2 coded trial spends 3 dB more energy per
  /// information bit.
  std::optional<fec::ConvCode> fec;

  /// Rare-event importance sampling (stats/sampling.h). When active, each
  /// trial targets one payload bit (stratified by trial index), scales the
  /// noise along that bit's received-waveform direction, and reports the
  /// target bit's error (bits = 1) plus the log-likelihood ratio as the
  /// is_llr metric. Packet trials only; incompatible with fec, and gen-2
  /// requires BPSK payload modulation.
  stats::SamplingPolicy sampling;
};

/// Canonical per-generation defaults: gen-2 returns TrialOptions{}; gen-1
/// returns the short-payload genie-timed BER-run defaults.
[[nodiscard]] TrialOptions default_options(Generation gen);

/// Generation-agnostic outcome of one trial: the bit/error pair every
/// Monte-Carlo loop consumes (first-class, never a metric) plus an
/// extensible record of named scalar metrics -- acquisition flags, sync
/// time, RAKE capture, SNR estimate (see metric_names). A metric absent
/// from a trial contributes no observation to its reduction (sync_time_s
/// is emitted only on detected trials, so its mean averages the detected
/// subset). Generation-specific detail (CIR estimates, soft streams,
/// acquisition internals) lives in Gen1TrialResult / Gen2TrialResult.
struct TrialResult {
  std::size_t bits = 0;
  std::size_t errors = 0;

  /// (name, value) in emission order; names unique per trial.
  std::vector<std::pair<std::string, double>> metrics;

  void set_metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }

  /// The named metric's value, or nullopt when this trial did not emit it.
  [[nodiscard]] std::optional<double> metric(const std::string& name) const {
    for (const auto& [key, value] : metrics) {
      if (key == name) return value;
    }
    return std::nullopt;
  }
};

/// What a link implementation supports; make_link validates a spec's
/// options against these, and run_packet fails loudly on unsupported
/// options rather than silently ignoring them.
struct LinkCaps {
  Generation generation = Generation::kGen2;
  double bit_rate_hz = 0.0;
  bool complex_baseband = false;   ///< I/Q (gen-2) vs real baseband (gen-1)
  bool supports_interferer = false;
  bool supports_auto_notch = false;
  bool supports_fec = false;
  bool supports_acquisition_trials = false;  ///< accepts TrialKind::kAcquisition

  /// Every metric name this link can emit on TrialResult, across all trial
  /// kinds (trial_metric_names narrows this to one kind's emission set).
  std::vector<std::string> metric_names;
};

/// Exactly the metric names a (generation, kind) trial emits on
/// TrialResult -- the vocabulary record_metrics and stop-rule metrics must
/// come from. \throws InvalidArgument when the generation does not support
/// the kind.
[[nodiscard]] std::vector<std::string> trial_metric_names(Generation gen, TrialKind kind);

/// True when a (generation, kind) trial emits the named metric -- the one
/// membership check every record_metrics / stop-metric validator shares.
/// \throws InvalidArgument when the generation does not support the kind.
[[nodiscard]] bool emits_metric(Generation gen, TrialKind kind, const std::string& name);

/// Abstract generation-agnostic link.
///
/// Thread-safety: a link instance is NOT safe for concurrent run_packet
/// calls (the receiver mutates per-packet state). Parallel sweeps give each
/// worker its own link built from the same (spec, seed) -- identical
/// hardware mismatch -- and pass an explicit per-trial Rng so results are a
/// pure function of that Rng, independent of which worker runs the trial.
class Link {
 public:
  explicit Link(uint64_t seed) : rng_(seed) {}
  virtual ~Link() = default;

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  [[nodiscard]] virtual const LinkCaps& caps() const noexcept = 0;
  [[nodiscard]] Generation generation() const noexcept { return caps().generation; }

  /// Runs one packet. All trial randomness (payload, delay, channel
  /// realization, noise) is drawn from \p rng, so a trial's outcome is a
  /// pure function of (spec, construction seed, rng) -- plus, for
  /// ensemble-mode options, the realization in \p context (which the sweep
  /// engine resolves as a pure function of the spec's ChannelSource key and
  /// the trial index).
  /// \throws InvalidArgument when \p options uses a feature caps() lacks,
  ///         or asks for an ensemble channel without a resolved realization.
  [[nodiscard]] virtual TrialResult run_packet(const TrialOptions& options, Rng& rng,
                                               const TrialContext& context) = 0;

  /// Fresh-channel overload (default TrialContext).
  [[nodiscard]] TrialResult run_packet(const TrialOptions& options, Rng& rng) {
    return run_packet(options, rng, TrialContext{});
  }

  /// Convenience overload on the link's own RNG (state advances).
  [[nodiscard]] TrialResult run_packet(const TrialOptions& options) {
    return run_packet(options, rng_, TrialContext{});
  }

  /// Direct access to the trial RNG (benches print the seed).
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 protected:
  Rng rng_;
};

/// Everything needed to construct a link and run packet trials: which
/// generation (via the config alternative) plus the per-trial options.
/// This is the serializable unit the scenario registry, the JSON scenario
/// files, and the uwb_sweep CLI all traffic in.
struct LinkSpec {
  std::variant<Gen1Config, Gen2Config> config = Gen2Config{};
  TrialOptions options{};

  [[nodiscard]] Generation generation() const noexcept {
    return config.index() == 0 ? Generation::kGen1 : Generation::kGen2;
  }
  [[nodiscard]] const Gen1Config& gen1() const { return std::get<Gen1Config>(config); }
  [[nodiscard]] const Gen2Config& gen2() const { return std::get<Gen2Config>(config); }
  [[nodiscard]] Gen1Config& gen1() { return std::get<Gen1Config>(config); }
  [[nodiscard]] Gen2Config& gen2() { return std::get<Gen2Config>(config); }

  /// Spec for a gen-1 link with the gen-1 option defaults.
  [[nodiscard]] static LinkSpec for_gen1(Gen1Config config);
  [[nodiscard]] static LinkSpec for_gen1(Gen1Config config, TrialOptions options);

  /// Spec for a gen-2 link with the gen-2 option defaults.
  [[nodiscard]] static LinkSpec for_gen2(Gen2Config config);
  [[nodiscard]] static LinkSpec for_gen2(Gen2Config config, TrialOptions options);
};

/// Generation-level capability flags without constructing any hardware
/// (bit_rate_hz stays 0; it depends on the concrete config).
[[nodiscard]] LinkCaps generation_caps(Generation gen);

/// Checks \p spec's options against its generation's capabilities.
/// \throws InvalidArgument on an unsupported feature (e.g. FEC or an
///         interferer on gen-1). Cheap: no transmitter/receiver is built,
///         so sweep runners can validate a whole plan up front.
void validate_spec(const LinkSpec& spec);

/// Factory: builds the concrete link for \p spec's generation.
/// \throws InvalidArgument when spec.options uses a feature the generation
///         does not support (see validate_spec), so bad specs fail at
///         construction, not mid-sweep.
[[nodiscard]] std::unique_ptr<Link> make_link(const LinkSpec& spec, uint64_t seed);

/// One gen-2 packet's detailed outcome. Importance-sampled trials set
/// \p weighted: bits/errors then cover the one target bit and is_llr
/// carries the trial's log-likelihood ratio.
struct Gen2TrialResult {
  std::size_t bits = 0;
  std::size_t errors = 0;
  Gen2RxResult rx;
  channel::Cir true_channel;
  double is_llr = 0.0;
  bool weighted = false;
};

/// The Section-3 direct-conversion 100 Mbps link (receiver mismatch drawn
/// once at construction).
class Gen2Link final : public Link {
 public:
  Gen2Link(const Gen2Config& config, uint64_t seed);

  [[nodiscard]] const LinkCaps& caps() const noexcept override { return caps_; }
  [[nodiscard]] const Gen2Config& config() const noexcept { return config_; }
  [[nodiscard]] Gen2Transmitter& transmitter() noexcept { return tx_; }
  [[nodiscard]] Gen2Receiver& receiver() noexcept { return rx_; }

  [[nodiscard]] TrialResult run_packet(const TrialOptions& options, Rng& rng,
                                       const TrialContext& context) override;
  using Link::run_packet;

  /// Full-diagnostics variant: receiver state, soft streams, true CIR.
  [[nodiscard]] Gen2TrialResult run_packet_full(const TrialOptions& options, Rng& rng,
                                                const TrialContext& context);
  [[nodiscard]] Gen2TrialResult run_packet_full(const TrialOptions& options, Rng& rng) {
    return run_packet_full(options, rng, TrialContext{});
  }
  [[nodiscard]] Gen2TrialResult run_packet_full(const TrialOptions& options) {
    return run_packet_full(options, rng_, TrialContext{});
  }

 private:
  Gen2Config config_;
  LinkCaps caps_;
  Gen2Transmitter tx_;
  Gen2Receiver rx_;
};

/// One gen-1 packet's detailed outcome. See Gen2TrialResult for the
/// weighted (importance-sampled) trial accounting.
struct Gen1TrialResult {
  std::size_t bits = 0;
  std::size_t errors = 0;
  Gen1RxResult rx;
  std::size_t true_offset_adc = 0;  ///< actual preamble start at ADC rate
  double is_llr = 0.0;
  bool weighted = false;
};

/// The Section-2 baseband 193 kbps link. Same thread-safety contract as
/// Gen2Link: one link per worker, per-trial randomness through the
/// explicit-Rng overloads.
class Gen1Link final : public Link {
 public:
  Gen1Link(const Gen1Config& config, uint64_t seed);

  [[nodiscard]] const LinkCaps& caps() const noexcept override { return caps_; }
  [[nodiscard]] const Gen1Config& config() const noexcept { return config_; }
  [[nodiscard]] Gen1Transmitter& transmitter() noexcept { return tx_; }
  [[nodiscard]] Gen1Receiver& receiver() noexcept { return rx_; }

  [[nodiscard]] TrialResult run_packet(const TrialOptions& options, Rng& rng,
                                       const TrialContext& context) override;
  using Link::run_packet;

  /// Full-diagnostics variant: acquisition result, decoded bits, offsets.
  [[nodiscard]] Gen1TrialResult run_packet_full(const TrialOptions& options, Rng& rng,
                                                const TrialContext& context);
  [[nodiscard]] Gen1TrialResult run_packet_full(const TrialOptions& options, Rng& rng) {
    return run_packet_full(options, rng, TrialContext{});
  }
  [[nodiscard]] Gen1TrialResult run_packet_full(const TrialOptions& options) {
    return run_packet_full(options, rng_, TrialContext{});
  }

  /// Acquisition-only trial diagnostics: the acquisition result plus
  /// whether the found timing matches the true one (within +/- tol
  /// samples, modulo one PN period). run_packet with
  /// TrialOptions::kind == kAcquisition runs this same trial through the
  /// generic Link interface -- bits/errors count attempts and timing
  /// failures, metrics carry acquired / timing_correct / sync_time_s --
  /// so acquisition scenarios flow through the sweep engine like any
  /// other; these overloads stay for callers that inspect Gen1AcqResult.
  struct AcqTrial {
    Gen1AcqResult acq;
    bool timing_correct = false;
    std::size_t true_offset_adc = 0;
  };
  [[nodiscard]] AcqTrial run_acquisition(const TrialOptions& options,
                                         std::size_t tol_samples = 2);

  /// Seed-parameterized acquisition trial; ensemble-mode options take
  /// their multipath realization from \p context like run_packet does.
  [[nodiscard]] AcqTrial run_acquisition(const TrialOptions& options, Rng& rng,
                                         std::size_t tol_samples,
                                         const TrialContext& context = TrialContext{});

 private:
  /// The composite kernel g = pulse prototype convolved with the sampled
  /// CIR, driving the sparse pulse-train channel path: the tx waveform is
  /// a few monocycle samples per PRF frame, so the channel output is
  /// sum_k a_k * g[n - k*frame] at ~2% of the dense convolution's cost.
  /// Cached against the exact tap list: in ensemble mode every packet of a
  /// sweep point shares one realization, so g is computed once per point.
  /// g is a pure function of (taps, config) -- caching cannot change
  /// results for any worker count or trial order. Rebuilds also refresh the
  /// float mirror g_kernel_f_ that the single-precision scatter path reads.
  const RealVec& composite_kernel(const channel::Cir& cir);

  /// Float mirror of the prototype pulse (the AWGN-only scatter kernel),
  /// built on first use.
  const dsp::AlignedVec<float>& prototype_f();

  /// Sparse pulse-train synthesis + channel + AWGN straight into the
  /// single-precision sample arena: y[n] += a_s * g[n - delay - s*frame]
  /// over \p kernel, then float noise at \p n0. Returns the arena span the
  /// receiver's float overloads consume.
  std::span<const float> scatter_and_noise(const std::vector<double>& amplitudes,
                                           std::size_t delay_frames,
                                           const dsp::AlignedVec<float>& kernel, double n0,
                                           Rng& rng);

  Gen1Config config_;
  LinkCaps caps_;
  Gen1Transmitter tx_;
  Gen1Receiver rx_;
  std::vector<channel::CirTap> g_key_taps_;  ///< taps g_kernel_ was built from
  RealVec g_kernel_;
  dsp::AlignedVec<float> g_kernel_f_;  ///< float mirror of g_kernel_
  dsp::AlignedVec<float> proto_f_;     ///< float mirror of the prototype pulse
  dsp::AlignedVec<float> rx_arena_;    ///< per-packet received-sample arena
};

}  // namespace uwb::txrx
