#pragma once
/// \file link.h
/// \brief End-to-end link simulation: transmitter -> channel (multipath /
///        interferer / AWGN) -> receiver, with per-packet trial results.
///        Every BER/acquisition bench drives one of these runners.

#include <cstdint>
#include <optional>

#include "channel/saleh_valenzuela.h"
#include "common/rng.h"
#include "fec/convolutional.h"
#include "txrx/receiver_gen1.h"
#include "txrx/receiver_gen2.h"
#include "txrx/transceiver_config.h"
#include "txrx/transmitter.h"

namespace uwb::txrx {

/// Channel/impairment options for one gen-2 packet trial.
struct Gen2LinkOptions {
  int cm = 0;                     ///< 0 = AWGN only, 1..4 = 802.15.3a CM1..CM4
  double ebn0_db = 10.0;
  std::size_t payload_bits = 200;

  bool interferer = false;
  double interferer_sir_db = 0.0;     ///< signal-to-interference ratio
  double interferer_freq_hz = 80e6;   ///< baseband offset of the CW tone

  bool auto_notch = false;            ///< spectral monitor drives the notch
  bool run_spectral_monitor = true;
  bool genie_timing = false;
  std::size_t start_delay_max_samples = 32;  ///< random TX start (analog rate)

  /// Outer convolutional code. When set, the payload is encoded before
  /// transmission and soft-Viterbi decoded from the RAKE soft outputs
  /// (requires BPSK and disables the MLSE hard path for the trial). Note
  /// that energy accounting stays per *coded* bit: at equal options.ebn0_db
  /// a rate-1/2 coded trial spends 3 dB more energy per information bit.
  std::optional<fec::ConvCode> fec;
};

/// One packet's outcome.
struct Gen2TrialResult {
  std::size_t bits = 0;
  std::size_t errors = 0;
  Gen2RxResult rx;
  channel::Cir true_channel;
};

/// Reusable gen-2 link (receiver mismatch drawn once at construction).
///
/// Thread-safety: a link instance is NOT safe for concurrent run_packet
/// calls (the receiver mutates per-packet state). Parallel sweeps give each
/// worker its own link built from the same (config, seed) -- identical
/// hardware mismatch -- and pass an explicit per-trial Rng so results are a
/// pure function of that Rng, independent of which worker runs the trial.
class Gen2Link {
 public:
  Gen2Link(const Gen2Config& config, uint64_t seed);

  [[nodiscard]] const Gen2Config& config() const noexcept { return config_; }
  [[nodiscard]] Gen2Transmitter& transmitter() noexcept { return tx_; }
  [[nodiscard]] Gen2Receiver& receiver() noexcept { return rx_; }

  /// Runs one packet; rng state advances (independent trials).
  [[nodiscard]] Gen2TrialResult run_packet(const Gen2LinkOptions& options);

  /// Seed-parameterized variant: all trial randomness (payload, delay,
  /// channel realization, noise) is drawn from \p rng, so a trial's outcome
  /// is a pure function of (config, construction seed, rng).
  [[nodiscard]] Gen2TrialResult run_packet(const Gen2LinkOptions& options, Rng& rng);

  /// Direct access to the trial RNG (benches print the seed).
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  Gen2Config config_;
  Rng rng_;
  Gen2Transmitter tx_;
  Gen2Receiver rx_;
};

/// Channel/impairment options for one gen-1 packet trial.
struct Gen1LinkOptions {
  double ebn0_db = 10.0;
  std::size_t payload_bits = 32;
  bool genie_timing = true;   ///< BER runs use genie; acquisition runs don't
  int cm = 0;                 ///< 0 = AWGN, 1..4 = CM (real-polarity variant)
  std::size_t start_delay_max_frames = 64;  ///< random TX start in frames
};

/// One gen-1 packet's outcome.
struct Gen1TrialResult {
  std::size_t bits = 0;
  std::size_t errors = 0;
  Gen1RxResult rx;
  std::size_t true_offset_adc = 0;  ///< actual preamble start at ADC rate
};

/// Reusable gen-1 link. Same thread-safety contract as Gen2Link: one link
/// per worker, per-trial randomness through the explicit-Rng overloads.
class Gen1Link {
 public:
  Gen1Link(const Gen1Config& config, uint64_t seed);

  [[nodiscard]] const Gen1Config& config() const noexcept { return config_; }
  [[nodiscard]] Gen1Transmitter& transmitter() noexcept { return tx_; }
  [[nodiscard]] Gen1Receiver& receiver() noexcept { return rx_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  [[nodiscard]] Gen1TrialResult run_packet(const Gen1LinkOptions& options);

  /// Seed-parameterized variant (see Gen2Link::run_packet).
  [[nodiscard]] Gen1TrialResult run_packet(const Gen1LinkOptions& options, Rng& rng);

  /// Acquisition-only trial: returns the acquisition result plus whether
  /// the found timing matches the true one (within +/- tol samples, modulo
  /// one PN period).
  struct AcqTrial {
    Gen1AcqResult acq;
    bool timing_correct = false;
    std::size_t true_offset_adc = 0;
  };
  [[nodiscard]] AcqTrial run_acquisition(const Gen1LinkOptions& options,
                                         std::size_t tol_samples = 2);

  /// Seed-parameterized acquisition trial.
  [[nodiscard]] AcqTrial run_acquisition(const Gen1LinkOptions& options, Rng& rng,
                                         std::size_t tol_samples);

 private:
  Gen1Config config_;
  Rng rng_;
  Gen1Transmitter tx_;
  Gen1Receiver rx_;
};

}  // namespace uwb::txrx
