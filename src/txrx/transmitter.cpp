#include "txrx/transmitter.h"

#include <cmath>

#include "common/error.h"
#include "dsp/resampler.h"
#include "phy/scrambler.h"
#include "pulse/pulse_train.h"
#include "rf/mixer.h"

namespace uwb::txrx {

// ---------------------------------------------------------------- Gen-1 ----

Gen1Transmitter::Gen1Transmitter(const Gen1Config& config)
    : config_(config),
      pulse_(pulse::gaussian_monocycle(config.pulse_sigma_s, config.analog_fs)),
      framer_(config.packet) {
  detail::require(config.pulses_per_bit >= 1, "Gen1Transmitter: pulses_per_bit must be >= 1");
  detail::require(config.preamble_repetitions >= 1,
                  "Gen1Transmitter: preamble repetitions must be >= 1");
  // Spreading chips: one maximal-length sequence cycled across the pulses
  // of each bit (polarity randomization smooths the spectrum and provides
  // processing gain against tones).
  spread_ = phy::to_chips(phy::msequence(config.spread_msequence_degree));
  pn_chips_ = phy::to_chips(phy::msequence(config.preamble_pn_degree));
  pulse_taps_adc_ = pulse::gaussian_monocycle(config_.pulse_sigma_s, config_.adc_rate).samples();
}

Gen1Train Gen1Transmitter::transmit_train(const BitVec& payload) const {
  const phy::FramedPacket pkt = framer_.frame(payload);

  // Data section = SFD + header + payload(+CRC), each bit spread over
  // pulses_per_bit polarity-scrambled pulses.
  BitVec data_bits = pkt.sfd;
  data_bits.insert(data_bits.end(), pkt.header.begin(), pkt.header.end());
  data_bits.insert(data_bits.end(), pkt.payload.begin(), pkt.payload.end());

  // Slot amplitudes: pulse-level PN preamble first, then the spread data
  // bits. Every slot sits on the PRF grid (no PPM offsets at gen-1).
  Gen1Train train;
  train.amplitudes.reserve(preamble_frames() +
                           data_bits.size() * static_cast<std::size_t>(config_.pulses_per_bit));
  for (int rep = 0; rep < config_.preamble_repetitions; ++rep) {
    for (double chip : pn_chips_) {
      train.amplitudes.push_back(chip);
    }
  }
  for (auto b : data_bits) {
    const double w = b ? -1.0 : 1.0;
    for (int k = 0; k < config_.pulses_per_bit; ++k) {
      train.amplitudes.push_back(w * spread_[static_cast<std::size_t>(k) % spread_.size()]);
    }
  }

  TxFrame& frame = train.frame;
  frame.payload = payload;
  frame.frame_bits = std::move(data_bits);
  frame.preamble_bits = preamble_frames();
  frame.sfd_bits = pkt.sfd.size();
  frame.samples_per_bit =
      config_.frame_samples_analog() * static_cast<std::size_t>(config_.pulses_per_bit);
  // Data-section energy per bit (what Eb/N0 sweeps calibrate against).
  frame.energy_per_bit =
      pulse_.total_energy() * static_cast<double>(config_.pulses_per_bit);
  frame.overhead_symbols = pkt.sfd.size() + pkt.header.size();
  frame.payload_symbols = pkt.payload.size();
  frame.body_bits = pkt.payload.size();
  return train;
}

std::pair<RealWaveform, TxFrame> Gen1Transmitter::transmit(const BitVec& payload) const {
  Gen1Train train = transmit_train(payload);

  std::vector<pulse::PulseSlot> slots;
  slots.reserve(train.amplitudes.size());
  for (double a : train.amplitudes) slots.push_back(pulse::PulseSlot{a, 0.0});

  pulse::PulseTrainSpec spec;
  spec.prf_hz = config_.prf_hz();
  spec.pulses_per_bit = config_.pulses_per_bit;
  spec.sample_rate_hz = config_.analog_fs;
  RealWaveform wave = pulse::build_train(pulse_, slots, spec);
  return {std::move(wave), std::move(train.frame)};
}

// ---------------------------------------------------------------- Gen-2 ----

Gen2Transmitter::Gen2Transmitter(const Gen2Config& config)
    : config_(config), pulse_(pulse::make_pulse(config.pulse)), framer_(config.packet) {
  detail::require(config.pulse.sample_rate_hz == config.analog_fs,
                  "Gen2Transmitter: pulse spec must be generated at analog_fs");

  // Per-trial hot-path caches: everything below is a pure function of the
  // config, so it is synthesized once here instead of once per packet.
  pulse::PulseSpec pspec = config_.pulse;
  pspec.sample_rate_hz = config_.adc_rate;
  const RealWaveform pulse_adc = pulse::make_pulse(pspec);
  pulse_taps_adc_ = pulse_adc.samples();

  const auto sps = static_cast<std::size_t>(config_.adc_rate / config_.prf_hz);
  const BitVec& pre = framer_.preamble_bits();
  preamble_tmpl_adc_.assign(sps * pre.size() + pulse_adc.size(), cplx{});
  for (std::size_t m = 0; m < pre.size(); ++m) {
    const double w = pre[m] ? -1.0 : 1.0;
    const std::size_t base = m * sps;
    for (std::size_t i = 0; i < pulse_adc.size(); ++i) {
      preamble_tmpl_adc_[base + i] += w * pulse_adc[i];
    }
  }

  bpsk_mod_ = phy::make_modulator(phy::Modulation::kBpsk, config_.prf_hz);
  payload_mod_ = phy::make_modulator(config_.modulation, config_.prf_hz);
}

std::pair<CplxWaveform, TxFrame> Gen2Transmitter::transmit(const BitVec& payload) const {
  const phy::FramedPacket pkt = framer_.frame(payload);

  // Preamble + SFD + header always ride BPSK (acquisition needs antipodal
  // correlation); the payload uses the configured modulation.
  const std::size_t overhead_bits =
      pkt.preamble.size() + pkt.sfd.size() + pkt.header.size();
  const phy::Modulator* bpsk = bpsk_mod_.get();
  const phy::Modulator* payload_mod = payload_mod_.get();

  BitVec overhead(pkt.all.begin(), pkt.all.begin() + static_cast<std::ptrdiff_t>(overhead_bits));
  BitVec body(pkt.all.begin() + static_cast<std::ptrdiff_t>(overhead_bits), pkt.all.end());
  // Pad the body to a whole number of symbols if needed (4-PAM).
  while (body.size() % static_cast<std::size_t>(payload_mod->bits_per_symbol()) != 0) {
    body.push_back(0);
  }

  const phy::SymbolMapping head_map = bpsk->map(overhead);
  const phy::SymbolMapping body_map = payload_mod->map(body);

  std::vector<double> weights = head_map.weights;
  weights.insert(weights.end(), body_map.weights.begin(), body_map.weights.end());
  std::vector<double> offsets(head_map.weights.size(), 0.0);
  if (!body_map.time_offsets_s.empty()) {
    offsets.insert(offsets.end(), body_map.time_offsets_s.begin(),
                   body_map.time_offsets_s.end());
  } else {
    offsets.insert(offsets.end(), body_map.weights.size(), 0.0);
  }

  const auto slots = pulse::slots_from_weights(weights, offsets, 1);
  pulse::PulseTrainSpec spec;
  spec.prf_hz = config_.prf_hz;
  spec.pulses_per_bit = 1;
  spec.sample_rate_hz = config_.analog_fs;
  CplxWaveform wave = pulse::build_train_cplx(pulse_, slots, spec);

  TxFrame frame;
  frame.payload = payload;
  frame.frame_bits = pkt.all;
  frame.preamble_bits = pkt.preamble.size();
  frame.sfd_bits = pkt.sfd.size();
  frame.samples_per_bit = config_.samples_per_bit_analog();
  // Eb over info-carrying symbols: total energy / on-air bits (overhead
  // counted -- it is transmitted energy).
  frame.energy_per_bit =
      wave.total_energy() / static_cast<double>(overhead_bits + body.size());
  frame.overhead_symbols = head_map.weights.size();
  frame.payload_symbols = body_map.weights.size();
  frame.body_bits = pkt.payload.size();
  return {std::move(wave), std::move(frame)};
}

RealWaveform Gen2Transmitter::transmit_passband(const CplxWaveform& baseband,
                                                double rf_fs) const {
  const pulse::BandPlan plan;
  const double fc = plan.center_frequency(config_.channel_index);
  detail::require(rf_fs > 2.0 * (fc + config_.pulse.bandwidth_hz),
                  "transmit_passband: rf_fs too low for the selected channel");
  // Interpolate baseband to the RF rate, then quadrature-upconvert.
  const auto factor = static_cast<int>(std::llround(rf_fs / baseband.sample_rate()));
  detail::require(std::abs(rf_fs - factor * baseband.sample_rate()) < 1.0,
                  "transmit_passband: rf_fs must be an integer multiple of analog_fs");
  CplxWaveform up = baseband;
  if (factor > 1) {
    up = dsp::upsample(baseband, factor, 95);
  }
  const rf::Upconverter upc(fc, rf_fs, config_.front_end.iq);
  return upc.process(up);
}

}  // namespace uwb::txrx
