#pragma once
/// \file receiver_gen1.h
/// \brief The generation-1 receiver of Fig. 1: no downconverter, 4-way
///        time-interleaved flash ADC at 2 GSps, and a fully-digital back end
///        whose parallel correlators perform coarse acquisition, fine
///        timing and despreading.
///
/// Two-stage coarse acquisition (the "< 70 us" machinery):
///   Stage 1 -- pulse phase: noncoherent combining of |matched filter| over
///     acq_integration_frames frames for each of the frame_samples_adc
///     candidate sample phases, acq_parallelism_stage1 at a time.
///   Stage 2 -- code phase: one PN period (127 frames = 41.1 us) of
///     per-frame samples correlated against all cyclic shifts of the PN,
///     acq_parallelism_stage2 shifts at a time.
/// Modeled sync time = dwells1 * K1 * Tf + dwells2 * 127 * Tf, the real-time
/// cost of a streaming architecture with that much correlator hardware.

#include "adc/flash_adc.h"
#include "adc/sampling.h"
#include "common/rng.h"
#include "common/types.h"
#include "common/waveform.h"
#include "txrx/transceiver_config.h"
#include "txrx/transmitter.h"

namespace uwb::txrx {

/// Gen-1 acquisition diagnostics.
struct Gen1AcqResult {
  bool acquired = false;
  std::size_t pulse_phase = 0;    ///< sample phase within a frame (stage 1)
  std::size_t code_phase = 0;     ///< PN chip shift (stage 2)
  std::size_t timing_offset = 0;  ///< preamble start sample at the ADC rate
  double stage2_metric = 0.0;     ///< normalized code correlation
  double sync_time_s = 0.0;       ///< modeled elapsed acquisition time
};

/// Per-packet receive result.
struct Gen1RxResult {
  Gen1AcqResult acq;
  BitVec data_bits;             ///< decoded data-section bits
  std::size_t bit_errors = 0;
  std::size_t bits_compared = 0;
};

/// Receiver options per run.
struct Gen1RxOptions {
  bool genie_timing = false;    ///< skip acquisition, use genie_offset
  std::size_t genie_offset = 0; ///< known preamble start at the ADC rate
};

/// The gen-1 receiver.
class Gen1Receiver {
 public:
  /// \p rng draws the converter's static mismatch once (comparator offsets,
  /// lane gain/offset/skew).
  Gen1Receiver(const Gen1Config& config, Rng& rng);

  [[nodiscard]] const Gen1Config& config() const noexcept { return config_; }

  /// Full receive: sample, convert, matched-filter, acquire, despread.
  [[nodiscard]] Gen1RxResult receive(const RealWaveform& rx, const Gen1Transmitter& tx,
                                     const TxFrame& tx_reference,
                                     const Gen1RxOptions& options, Rng& rng);

  /// Acquisition only (bench E2/E11): processes a capture containing at
  /// least one PN period past the search uncertainty.
  [[nodiscard]] Gen1AcqResult acquire(const RealWaveform& rx, const Gen1Transmitter& tx,
                                      Rng& rng);

 private:
  /// Analog band-limiting + sampling + interleaved conversion + matched
  /// filtering.
  [[nodiscard]] RealVec digitize_and_filter(const RealWaveform& rx,
                                            const Gen1Transmitter& tx, Rng& rng);

  [[nodiscard]] Gen1AcqResult acquire_on_mf(const RealVec& mf, const Gen1Transmitter& tx) const;

  Gen1Config config_;
  adc::SampleAndHold sampler_;
  adc::TimeInterleavedAdc adc_;
  RealVec anti_alias_taps_;
};

}  // namespace uwb::txrx
