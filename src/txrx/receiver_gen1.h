#pragma once
/// \file receiver_gen1.h
/// \brief The generation-1 receiver of Fig. 1: no downconverter, 4-way
///        time-interleaved flash ADC at 2 GSps, and a fully-digital back end
///        whose parallel correlators perform coarse acquisition, fine
///        timing and despreading.
///
/// Two-stage coarse acquisition (the "< 70 us" machinery):
///   Stage 1 -- pulse phase: noncoherent combining of |matched filter| over
///     acq_integration_frames frames for each of the frame_samples_adc
///     candidate sample phases, acq_parallelism_stage1 at a time.
///   Stage 2 -- code phase: one PN period (127 frames = 41.1 us) of
///     per-frame samples correlated against all cyclic shifts of the PN,
///     acq_parallelism_stage2 shifts at a time.
/// Modeled sync time = dwells1 * K1 * Tf + dwells2 * 127 * Tf, the real-time
/// cost of a streaming architecture with that much correlator hardware.

#include <span>

#include "adc/flash_adc.h"
#include "adc/sampling.h"
#include "common/rng.h"
#include "common/types.h"
#include "common/waveform.h"
#include "dsp/aligned.h"
#include "txrx/transceiver_config.h"
#include "txrx/transmitter.h"

namespace uwb::txrx {

/// Gen-1 acquisition diagnostics.
struct Gen1AcqResult {
  bool acquired = false;
  std::size_t pulse_phase = 0;    ///< sample phase within a frame (stage 1)
  std::size_t code_phase = 0;     ///< PN chip shift (stage 2)
  std::size_t timing_offset = 0;  ///< preamble start sample at the ADC rate
  double stage2_metric = 0.0;     ///< normalized code correlation
  double sync_time_s = 0.0;       ///< modeled elapsed acquisition time
};

/// Per-packet receive result.
struct Gen1RxResult {
  Gen1AcqResult acq;
  BitVec data_bits;             ///< decoded data-section bits
  std::size_t bit_errors = 0;
  std::size_t bits_compared = 0;
};

/// Receiver options per run.
struct Gen1RxOptions {
  bool genie_timing = false;    ///< skip acquisition, use genie_offset
  std::size_t genie_offset = 0; ///< known preamble start at the ADC rate
};

/// The gen-1 receiver.
class Gen1Receiver {
 public:
  /// \p rng draws the converter's static mismatch once (comparator offsets,
  /// lane gain/offset/skew).
  Gen1Receiver(const Gen1Config& config, Rng& rng);

  [[nodiscard]] const Gen1Config& config() const noexcept { return config_; }

  /// Full receive: sample, convert, matched-filter, acquire, despread.
  /// Converts into the float sample arena once, then runs the
  /// single-precision pipeline below.
  [[nodiscard]] Gen1RxResult receive(const RealWaveform& rx, const Gen1Transmitter& tx,
                                     const TxFrame& tx_reference,
                                     const Gen1RxOptions& options, Rng& rng);

  /// Hot-path receive over the caller's float sample arena at rate \p fs
  /// (the sparse-channel link path lands here without ever building a
  /// double waveform).
  [[nodiscard]] Gen1RxResult receive(std::span<const float> rx, double fs,
                                     const Gen1Transmitter& tx,
                                     const TxFrame& tx_reference,
                                     const Gen1RxOptions& options, Rng& rng);

  /// Acquisition only (bench E2/E11): processes a capture containing at
  /// least one PN period past the search uncertainty.
  [[nodiscard]] Gen1AcqResult acquire(const RealWaveform& rx, const Gen1Transmitter& tx,
                                      Rng& rng);

  /// Float-arena acquisition (see the receive overload above).
  [[nodiscard]] Gen1AcqResult acquire(std::span<const float> rx, double fs,
                                      const Gen1Transmitter& tx, Rng& rng);

 private:
  /// Analog band-limiting + sampling + interleaved conversion + matched
  /// filtering, entirely in single precision. The returned span views
  /// ws_mf_, valid until the next call on this receiver.
  [[nodiscard]] std::span<const float> digitize_and_filter(const float* rx, std::size_t n,
                                                           double fs, const Gen1Transmitter& tx,
                                                           Rng& rng);

  [[nodiscard]] Gen1AcqResult acquire_on_mf(std::span<const float> mf,
                                            const Gen1Transmitter& tx) const;

  Gen1Config config_;
  adc::SampleAndHold sampler_;
  adc::TimeInterleavedAdc adc_;
  RealVec anti_alias_taps_;
  RealVec lane_skews_s_;  ///< static per-lane skews, built once at construction

  // Per-receiver sample arena: every stage of digitize_and_filter writes
  // into one of these 64-byte-aligned grow-only buffers, so steady-state
  // packet processing performs zero heap allocations. Single precision:
  // the modeled front end is a 4-bit converter behind an AGC, so float's
  // 24-bit mantissa is ~20 bits beyond the physics while doubling SIMD
  // width through the filter/sampler/converter/matched-filter chain.
  dsp::AlignedVec<float> ws_rx_;        ///< double->float staging for waveform callers
  dsp::AlignedVec<float> ws_filtered_;
  dsp::AlignedVec<float> ws_sampled_;
  dsp::AlignedVec<float> ws_levels_;
  dsp::AlignedVec<float> ws_mf_;
  mutable dsp::AlignedVec<float> ws_acq_;  ///< stage-1 phase accumulators
};

}  // namespace uwb::txrx
