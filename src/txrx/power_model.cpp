#include "txrx/power_model.h"

#include <cmath>

namespace uwb::txrx {

double PowerBreakdown::total_w() const {
  double acc = 0.0;
  for (const auto& b : blocks) acc += b.power_w;
  return acc;
}

double PowerBreakdown::group_w(const std::string& group) const {
  double acc = 0.0;
  for (const auto& b : blocks) {
    if (b.group == group) acc += b.power_w;
  }
  return acc;
}

double PowerBreakdown::adc_plus_digital_fraction() const {
  const double total = total_w();
  if (total <= 0.0) return 0.0;
  return (group_w("ADC") + group_w("Digital")) / total;
}

PowerBreakdown gen1_power(const Gen1Config& config, const PowerModelParams& p) {
  PowerBreakdown bd;

  // RF front end: baseband pulsed radio -- LNA + baseband gain, no mixer or
  // synthesizer (Fig. 1 has no downconverter).
  bd.blocks.push_back({"LNA", p.lna_w, "RF"});
  bd.blocks.push_back({"VGA/buffers", p.vga_w + p.baseband_filter_w, "RF"});

  // ADC: 4-way interleaved flash, aggregate rate adc_rate.
  const double adc_power =
      p.adc_fom_j_per_conv * std::pow(2.0, config.adc_bits) * config.adc_rate;
  bd.blocks.push_back({"flash ADC (interleaved)", adc_power, "ADC"});

  // Digital back end at the ADC rate:
  //  - pulse matched filter: ~8-tap MAC per sample
  //  - acquisition correlator bank: P1 parallel accumulators (duty-cycled
  //    to ~10% -- acquisition only runs at packet start)
  //  - despreader + tracking: ~2 ops per sample
  const double fs = config.adc_rate;
  const double mf_ops = 8.0 * fs;
  const double acq_ops = 0.1 * static_cast<double>(config.acq_parallelism_stage1) * fs / 8.0;
  const double despread_ops = 2.0 * fs;
  bd.blocks.push_back({"matched filter", mf_ops * p.digital_energy_per_op_j, "Digital"});
  bd.blocks.push_back({"acquisition bank", acq_ops * p.digital_energy_per_op_j, "Digital"});
  bd.blocks.push_back({"despread/track", despread_ops * p.digital_energy_per_op_j, "Digital"});

  return bd;
}

PowerBreakdown gen2_power(const Gen2Config& config, const PowerModelParams& p) {
  PowerBreakdown bd;

  // Direct-conversion front end (Fig. 3).
  bd.blocks.push_back({"LNA", p.lna_w, "RF"});
  bd.blocks.push_back({"I/Q mixer", p.mixer_w, "RF"});
  bd.blocks.push_back({"synthesizer (PLL)", p.synthesizer_w, "RF"});
  bd.blocks.push_back({"VGA + filters", p.vga_w + p.baseband_filter_w, "RF"});

  // Two SAR ADCs. A 90 nm-class SAR earns a better FOM than the gen-1
  // flash; use half the configured FOM.
  const double adc_power =
      2.0 * 0.5 * p.adc_fom_j_per_conv * std::pow(2.0, config.sar.bits) * config.adc_rate;
  bd.blocks.push_back({"2x SAR ADC", adc_power, "ADC"});

  // Digital back end (90 nm-class energy: third of the 0.18 um figure).
  const double e_op = p.digital_energy_per_op_j / 3.0;
  const double fs = config.adc_rate;
  const double symbol_rate = config.prf_hz;

  const double mf_ops = 2.0 * 8.0 * fs;  // complex I/Q matched filter
  const double est_ops = 0.05 * 2.0 * fs;  // channel estimation, amortized
  const double rake_ops = 4.0 * static_cast<double>(config.rake.num_fingers) * symbol_rate;
  const double mlse_ops =
      config.use_mlse ? 2.0 * std::pow(2.0, config.mlse.memory) * 4.0 * symbol_rate : 0.0;
  const double fft_ops = 0.02 * 10.0 * fs;  // spectral monitor, amortized

  bd.blocks.push_back({"matched filter", mf_ops * e_op, "Digital"});
  bd.blocks.push_back({"channel estimator", est_ops * e_op, "Digital"});
  bd.blocks.push_back({"RAKE combiner", rake_ops * e_op, "Digital"});
  bd.blocks.push_back({"Viterbi (MLSE)", mlse_ops * e_op, "Digital"});
  bd.blocks.push_back({"spectral monitor", fft_ops * e_op, "Digital"});

  return bd;
}

double gen2_energy_per_bit_j(const Gen2Config& config, const PowerModelParams& params) {
  return gen2_power(config, params).total_w() / config.bit_rate_hz();
}

}  // namespace uwb::txrx
