#pragma once
/// \file transmitter.h
/// \brief Transmitters of both generations: packet bits to radiated
///        waveform (real baseband for gen-1, complex baseband -- optionally
///        upconverted to real passband -- for gen-2).

#include <memory>

#include "common/types.h"
#include "common/waveform.h"
#include "phy/modulation.h"
#include "phy/packet.h"
#include "txrx/transceiver_config.h"

namespace uwb::txrx {

/// What the transmitter put on the air, with bookkeeping the test/benches
/// (and genie-timing receivers) use.
struct TxFrame {
  BitVec payload;            ///< info bits carried
  BitVec frame_bits;         ///< full on-air bit sequence (preamble..payload)
  std::size_t preamble_bits = 0;
  std::size_t sfd_bits = 0;
  double energy_per_bit = 0.0;     ///< discrete Eb of the clean waveform
  std::size_t samples_per_bit = 0; ///< at the generated rate

  // Symbol-level layout (gen-2; overhead is always BPSK, the payload body
  // may use a multi-bit-per-symbol scheme).
  std::size_t overhead_symbols = 0;  ///< preamble + SFD + header symbols
  std::size_t payload_symbols = 0;   ///< body symbols (incl. CRC, pad)
  std::size_t body_bits = 0;         ///< payload + CRC bits (excl. pad)
};

/// A gen-1 packet's pulse train in sparse form: the per-slot amplitude
/// sequence on the PRF grid (slot k fires at k * frame_samples_analog())
/// plus the TxFrame bookkeeping. The gen-1 waveform is ~98% zeros -- a few
/// dozen monocycle samples per ~1300-sample frame -- so the fast channel
/// path consumes this directly (y = sum_k a_k * g[n - k*frame] with
/// g = prototype convolved with the CIR) without ever synthesizing the
/// dense waveform. build from Gen1Transmitter::transmit_train.
struct Gen1Train {
  std::vector<double> amplitudes;  ///< slot weights, one per PRF frame
  TxFrame frame;
};

/// Generation-1 baseband transmitter: pulse-level PN preamble followed by a
/// PN-spread data section (see Gen1Config's preamble note).
class Gen1Transmitter {
 public:
  explicit Gen1Transmitter(const Gen1Config& config);

  [[nodiscard]] const Gen1Config& config() const noexcept { return config_; }

  /// Frames \p payload and synthesizes the baseband waveform at analog_fs.
  /// For gen-1, TxFrame::frame_bits holds the *data-section* bits only
  /// (SFD + header + payload + CRC); TxFrame::preamble_bits counts the
  /// pulse-level preamble chips.
  [[nodiscard]] std::pair<RealWaveform, TxFrame> transmit(const BitVec& payload) const;

  /// Frames \p payload into the sparse slot-amplitude form; transmit() is
  /// exactly build_train over these slots, so the two views describe the
  /// same on-air signal.
  [[nodiscard]] Gen1Train transmit_train(const BitVec& payload) const;

  /// The spreading chip sequence (+/-1) applied across the pulses of a bit.
  [[nodiscard]] const std::vector<double>& spread_chips() const noexcept { return spread_; }

  /// One period of the pulse-level preamble PN, as +/-1 chips.
  [[nodiscard]] const std::vector<double>& preamble_chips() const noexcept { return pn_chips_; }

  /// Total preamble length in frames (chips x repetitions).
  [[nodiscard]] std::size_t preamble_frames() const noexcept {
    return pn_chips_.size() * static_cast<std::size_t>(config_.preamble_repetitions);
  }

  /// The monocycle prototype at analog_fs.
  [[nodiscard]] const RealWaveform& prototype() const noexcept { return pulse_; }

  /// The monocycle prototype regenerated at the ADC rate (matched filter).
  /// Computed once at construction; per-packet receive paths borrow it.
  [[nodiscard]] const RealVec& pulse_taps_adc() const noexcept { return pulse_taps_adc_; }

 private:
  Gen1Config config_;
  RealWaveform pulse_;
  std::vector<double> spread_;
  std::vector<double> pn_chips_;
  phy::PacketFramer framer_;
  RealVec pulse_taps_adc_;  ///< matched-filter taps cached at construction
};

/// Generation-2 transmitter: modulated RRC pulse trains at complex baseband.
class Gen2Transmitter {
 public:
  explicit Gen2Transmitter(const Gen2Config& config);

  [[nodiscard]] const Gen2Config& config() const noexcept { return config_; }

  /// Frames \p payload and synthesizes complex baseband at analog_fs.
  [[nodiscard]] std::pair<CplxWaveform, TxFrame> transmit(const BitVec& payload) const;

  /// Real passband synthesis at \p rf_fs (>= 2x the channel's top edge)
  /// through the quadrature upconverter -- used by passband demos/benches.
  [[nodiscard]] RealWaveform transmit_passband(const CplxWaveform& baseband,
                                               double rf_fs) const;

  /// RRC prototype at analog_fs.
  [[nodiscard]] const RealWaveform& prototype() const noexcept { return pulse_; }

  /// The framer (receiver needs the same preamble).
  [[nodiscard]] const phy::PacketFramer& framer() const noexcept { return framer_; }

  /// Clean preamble waveform at the ADC rate (the acquisition/channel-
  /// estimation template). Computed once at construction so per-packet
  /// receive calls never resynthesize it.
  [[nodiscard]] const CplxVec& preamble_template_adc() const noexcept {
    return preamble_tmpl_adc_;
  }

  /// Pulse matched-filter taps at the ADC rate (cached at construction).
  [[nodiscard]] const RealVec& pulse_taps_adc() const noexcept { return pulse_taps_adc_; }

 private:
  Gen2Config config_;
  RealWaveform pulse_;
  phy::PacketFramer framer_;
  RealVec pulse_taps_adc_;      ///< matched-filter taps at the ADC rate
  CplxVec preamble_tmpl_adc_;   ///< clean preamble template at the ADC rate
  // Modulators are stateless mapping tables; building them per packet was
  // a measurable share of small-packet transmit time.
  std::unique_ptr<phy::Modulator> bpsk_mod_;
  std::unique_ptr<phy::Modulator> payload_mod_;
};

}  // namespace uwb::txrx
