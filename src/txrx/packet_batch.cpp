#include "txrx/packet_batch.h"

#include <utility>

#include "stats/sampling.h"

namespace uwb::txrx {

PacketBatch::PacketBatch(std::shared_ptr<Link> link, const TrialOptions& options,
                         ChannelResolver resolver)
    : link_(std::move(link)), options_(options), resolver_(std::move(resolver)) {}

void PacketBatch::run(std::size_t first, std::size_t count, const Rng& root,
                      sim::TrialOutcome* out) {
  cirs_.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    cirs_[k] = resolver_ ? resolver_(first + k) : nullptr;
  }

  // Group by realization in first-seen order: trials sharing a cached CIR
  // run back-to-back, so the link rebuilds its composite kernel once per
  // realization per batch. The schedule is a pure function of the resolver
  // mapping, and execution order cannot change any outcome (each trial is a
  // pure function of its own forked Rng).
  order_.clear();
  order_.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    if (cirs_[k] == nullptr) {
      // Fresh draws share nothing: run at their own position, never group.
      order_.push_back(k);
      continue;
    }
    bool seen = false;
    for (std::size_t j = 0; j < k; ++j) {
      if (cirs_[j] == cirs_[k]) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    order_.push_back(k);
    for (std::size_t j = k + 1; j < count; ++j) {
      if (cirs_[j] == cirs_[k]) order_.push_back(j);
    }
  }

  for (const std::size_t k : order_) {
    Rng trial_rng = root.fork(first + k);
    out[k] = run_one(first + k, cirs_[k], trial_rng);
  }
}

sim::TrialOutcome PacketBatch::run_one(std::size_t index, const channel::Cir* cir,
                                       Rng& rng) {
  TrialContext context;
  context.channel = cir;
  const stats::SamplingPolicy& sampling = options_.sampling;
  if (sampling.active()) {
    // Index-keyed bias resolution, like the ensemble realization: trial i's
    // scale and target-bit stratum depend only on i, so weighted sweeps
    // stay deterministic for any worker count or batch size.
    context.noise_scale = stats::trial_noise_scale(sampling, index);
    context.sampling_trial = index;
    context.sampling_resolved = true;
  }
  TrialResult trial = link_->run_packet(options_, rng, context);

  sim::TrialOutcome out;
  out.bits = trial.bits;
  out.errors = trial.errors;
  // The importance weight bypasses the record_metrics filter: it is
  // estimator state, not an optional observable.
  if (const std::optional<double> llr = trial.metric(metric_names::kIsLlr)) {
    out.log_weight = *llr;
    out.weighted = true;
  }
  // record_metrics filters AND orders the recorded reductions; empty means
  // record everything the trial emitted, in emission order.
  const std::vector<std::string>& wanted = options_.record_metrics;
  if (wanted.empty()) {
    out.metrics = std::move(trial.metrics);
  } else {
    out.metrics.reserve(wanted.size());
    for (const std::string& name : wanted) {
      if (const std::optional<double> value = trial.metric(name)) {
        out.metrics.emplace_back(name, *value);
      }
    }
  }
  return out;
}

}  // namespace uwb::txrx
