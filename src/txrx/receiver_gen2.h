#pragma once
/// \file receiver_gen2.h
/// \brief The generation-2 receiver of Fig. 3: RF front end (direct
///        conversion + optional notch), dual SAR ADCs, and the digital back
///        end -- acquisition, channel estimation (quantized taps), RAKE,
///        Viterbi (MLSE) demodulation, spectral monitoring.

#include <memory>
#include <optional>

#include "adc/sampling.h"
#include "adc/sar_adc.h"
#include "channel/cir.h"
#include "common/rng.h"
#include "common/types.h"
#include "common/waveform.h"
#include "estimation/channel_estimator.h"
#include "estimation/spectral_monitor.h"
#include "txrx/transceiver_config.h"
#include "txrx/transmitter.h"

namespace uwb::txrx {

/// Per-packet receiver diagnostics.
struct Gen2RxResult {
  bool acquired = false;
  BitVec payload;               ///< decoded payload bits
  std::size_t bit_errors = 0;   ///< vs the reference payload (when given)
  std::size_t bits_compared = 0;
  std::vector<double> payload_soft;  ///< soft demod outputs (empty when the
                                     ///< MLSE path produced hard bits)

  std::size_t timing_offset = 0;     ///< t0 at the ADC rate
  channel::Cir channel_estimate;     ///< quantized CIR estimate
  double rake_energy_capture = 0.0;
  estimation::InterfererReport interferer;
  bool notch_applied = false;
  double amplitude_reference = 0.0;  ///< data-aided soft-output scale
  double snr_estimate_db = 0.0;
};

/// Receiver options that vary per experiment rather than per design.
struct Gen2RxOptions {
  bool genie_timing = false;        ///< trust the known TX start (BER-only runs)
  std::size_t genie_offset = 0;     ///< channel reference delay when genie
  bool run_spectral_monitor = true;
  bool auto_notch = false;          ///< monitor drives the RF notch + re-run
  double noise_variance = 0.0;      ///< channel N0 (front-end excess noise ref)
};

/// The gen-2 receiver.
class Gen2Receiver {
 public:
  /// \p rng seeds the static component mismatch (SAR caps, comparator
  /// noise) exactly once, like a fabricated part.
  Gen2Receiver(const Gen2Config& config, Rng& rng);

  [[nodiscard]] const Gen2Config& config() const noexcept { return config_; }

  /// Runtime reconfiguration -- the paper's power/QoS knobs (RAKE fingers,
  /// MLSE on/off and memory, estimator precision) may be changed between
  /// packets. Converter hardware (SAR mismatch) stays as constructed.
  [[nodiscard]] Gen2Config& mutable_config() noexcept { return config_; }

  /// Processes a received complex-baseband capture. \p tx_reference carries
  /// the frame layout (known preamble etc.); \p expected_payload enables
  /// error counting when provided.
  [[nodiscard]] Gen2RxResult receive(const CplxWaveform& rx, const Gen2Transmitter& tx,
                                     const TxFrame& tx_reference,
                                     const Gen2RxOptions& options, Rng& rng,
                                     const BitVec* expected_payload = nullptr);

 private:
  /// One pass of the analog + digital chain (factored out so auto-notch can
  /// re-run it after tuning the notch).
  [[nodiscard]] CplxWaveform analog_chain(const CplxWaveform& rx, double noise_variance,
                                          Rng& rng);

  /// The payload demapper for the *current* config_.modulation. Cached; the
  /// instance is rebuilt only when mutable_config() changed the scheme
  /// between packets (the paper's per-packet QoS knob).
  [[nodiscard]] const phy::Modulator& payload_modulator();

  Gen2Config config_;
  pulse::BandPlan plan_;
  rf::FrontEnd front_end_;
  adc::SampleAndHold sampler_;
  adc::SarAdc adc_i_;
  adc::SarAdc adc_q_;
  estimation::ChannelEstimator estimator_;
  estimation::SpectralMonitor monitor_;
  // Pulse matched-filter template, promoted to complex from the taps of the
  // transmitter passed to receive(). Rebuilt only when the tap values
  // change; the staleness check is a value compare against the (short)
  // cached taps, so it is safe across transmitter lifetimes.
  CplxVec pulse_tmpl_adc_;
  std::unique_ptr<phy::Modulator> payload_mod_;  ///< see payload_modulator()
  double payload_mod_prf_hz_ = 0.0;              ///< PRF payload_mod_ was built for
};

}  // namespace uwb::txrx
