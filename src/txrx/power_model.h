#pragma once
/// \file power_model.h
/// \brief Analytic block-level power model reproducing the paper's claim
///        that "more than half of the system power [is] dissipated in the
///        digital back end and the ADC" (Section 1), and the power /
///        complexity / QoS trade-off of Section 3 (bench E10, E13).
///
/// ADC power follows the Walden figure-of-merit P = FOM * 2^bits * fs.
/// Digital power counts MAC/ACS operations at an energy-per-op calibrated
/// to the implementation technology (0.18 um at 1.8 V for gen-1;
/// 90 nm-class for gen-2). RF blocks carry representative 2005-era fixed
/// powers. Absolute numbers are estimates; the *shares* are the result.

#include <string>
#include <vector>

#include "txrx/transceiver_config.h"

namespace uwb::txrx {

/// One block's estimated power.
struct BlockPower {
  std::string name;
  double power_w = 0.0;
  std::string group;  ///< "RF", "ADC", or "Digital"
};

/// Whole-receiver power breakdown.
struct PowerBreakdown {
  std::vector<BlockPower> blocks;

  [[nodiscard]] double total_w() const;
  [[nodiscard]] double group_w(const std::string& group) const;
  /// Fraction of the total in the ADC + digital back end -- the paper's
  /// "> half" claim.
  [[nodiscard]] double adc_plus_digital_fraction() const;
};

/// Technology/energy parameters of the model.
struct PowerModelParams {
  double adc_fom_j_per_conv = 1.0e-12;  ///< Walden FOM [J/conversion-step]
  double digital_energy_per_op_j = 3.0e-12;  ///< MAC/ACS energy (0.18 um class)
  // Representative RF block powers [W].
  double lna_w = 9e-3;
  double mixer_w = 8e-3;
  double synthesizer_w = 12e-3;
  double vga_w = 5e-3;
  double baseband_filter_w = 3e-3;
};

/// Gen-1 breakdown. Digital ops: matched filter + P parallel acquisition
/// correlators + despreader, all at the ADC rate.
PowerBreakdown gen1_power(const Gen1Config& config, const PowerModelParams& params = {});

/// Gen-2 breakdown. Digital ops: pulse matched filter, channel estimator
/// (amortized), RAKE fingers, MLSE ACS at 2 * 2^memory per symbol, spectral
/// monitor FFT (amortized).
PowerBreakdown gen2_power(const Gen2Config& config, const PowerModelParams& params = {});

/// Energy per received bit [J] for a gen-2 configuration (bench E13).
double gen2_energy_per_bit_j(const Gen2Config& config, const PowerModelParams& params = {});

}  // namespace uwb::txrx
