#include "txrx/receiver_gen2.h"

#include <algorithm>
#include <cmath>

#include "adc/quantizer.h"
#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/correlator.h"
#include "equalizer/demodulator.h"
#include "equalizer/mlse.h"
#include "equalizer/rake.h"
#include "estimation/snr_estimator.h"
#include "obs/profile.h"
#include "phy/modulation.h"

namespace uwb::txrx {

Gen2Receiver::Gen2Receiver(const Gen2Config& config, Rng& rng)
    : config_(config),
      plan_(),
      front_end_(config.front_end, plan_),
      sampler_(adc::SamplingParams{config.adc_rate, config.aperture_jitter_rms_s, 0.0}),
      adc_i_(config.sar, rng),
      adc_q_(config.sar, rng),
      estimator_(config.chanest),
      monitor_(estimation::SpectralMonitorConfig{1024, 12.0, 4}) {
  detail::require(config.analog_fs >= config.adc_rate,
                  "Gen2Receiver: analog rate must be >= ADC rate");
  detail::require(config.adc_rate >= config.prf_hz,
                  "Gen2Receiver: ADC rate must cover the PRF");
  payload_mod_ = phy::make_modulator(config_.modulation, config_.prf_hz);
  payload_mod_prf_hz_ = config_.prf_hz;
}

const phy::Modulator& Gen2Receiver::payload_modulator() {
  // PPM bakes the position offset from the PRF, so the PRF is part of the
  // staleness key alongside the scheme.
  if (payload_mod_ == nullptr || payload_mod_->scheme() != config_.modulation ||
      payload_mod_prf_hz_ != config_.prf_hz) {
    payload_mod_ = phy::make_modulator(config_.modulation, config_.prf_hz);
    payload_mod_prf_hz_ = config_.prf_hz;
  }
  return *payload_mod_;
}

CplxWaveform Gen2Receiver::analog_chain(const CplxWaveform& rx, double noise_variance,
                                        Rng& rng) {
  return front_end_.process_baseband(rx, noise_variance, rng);
}

Gen2RxResult Gen2Receiver::receive(const CplxWaveform& rx, const Gen2Transmitter& tx,
                                   const TxFrame& tx_reference, const Gen2RxOptions& options,
                                   Rng& rng, const BitVec* expected_payload) {
  Gen2RxResult result;
  front_end_.clear_notch();

  // ---- Analog front end + sampling + conversion --------------------------
  auto run_analog_digital = [&](Rng& r) {
    obs::StageTimer fe_timer(obs::Stage::kRxFrontend, rx.size());
    CplxWaveform fe = analog_chain(rx, options.noise_variance, r);
    CplxWaveform sampled = sampler_.sample(fe, r);
    fe_timer.finish();
    obs::StageTimer adc_timer(obs::Stage::kAdcQuantize, sampled.size());
    adc_i_.reset();
    adc_q_.reset();
    CplxVec codes = adc::digitize_iq(sampled.samples(), adc_i_, adc_q_);
    adc_timer.finish();
    return CplxWaveform(std::move(codes), config_.adc_rate);
  };
  Rng analog_rng = rng.fork(0xA11A);
  Rng analog_rng_replay = analog_rng;  // identical stream for the notch re-run
  CplxWaveform adc_out = run_analog_digital(analog_rng);

  // ---- Spectral monitoring (digital back end) ----------------------------
  if (options.run_spectral_monitor && adc_out.size() >= monitor_.config().fft_size) {
    result.interferer = monitor_.analyze(adc_out);
    if (result.interferer.detected && options.auto_notch) {
      // The monitor's estimate drives the front-end notch; the packet is
      // reprocessed through the (analog) chain with the notch engaged.
      front_end_.set_notch(result.interferer.frequency_hz, config_.analog_fs);
      adc_out = run_analog_digital(analog_rng_replay);
      result.notch_applied = true;
    }
  }

  // ---- Acquisition + channel estimation -----------------------------------
  const CplxVec& preamble_tmpl = tx.preamble_template_adc();
  if (adc_out.size() < preamble_tmpl.size() + 16) {
    return result;  // capture too short; not acquired
  }
  obs::StageTimer acq_timer(obs::Stage::kSyncAcquire, adc_out.size());
  const estimation::ChannelEstimate est =
      estimator_.estimate(adc_out, preamble_tmpl, options.genie_timing ? options.genie_offset : 0);
  acq_timer.finish();
  result.channel_estimate = est.cir;
  result.timing_offset = est.reference_offset;
  if (est.cir.empty() || est.peak_magnitude <= 0.0) {
    return result;  // nothing found
  }
  result.acquired = true;

  // ---- Matched filter ------------------------------------------------------
  // Template from the transmitter actually passed in (same contract as
  // before the cache); promotion to complex happens only when the tap
  // values changed. The value compare is O(|pulse|) -- tens of samples --
  // against a correlation that is O(|capture| log), so it is free.
  const RealVec& pulse_taps = tx.pulse_taps_adc();
  const bool tmpl_stale =
      pulse_tmpl_adc_.size() != pulse_taps.size() ||
      !std::equal(pulse_taps.begin(), pulse_taps.end(), pulse_tmpl_adc_.begin(),
                  [](double t, const cplx& c) { return c.real() == t && c.imag() == 0.0; });
  if (tmpl_stale) {
    pulse_tmpl_adc_.resize(pulse_taps.size());
    for (std::size_t i = 0; i < pulse_taps.size(); ++i) {
      pulse_tmpl_adc_[i] = cplx(pulse_taps[i], 0.0);
    }
  }
  obs::StageTimer mf_timer(obs::Stage::kCorrelateRake, adc_out.size());
  CplxWaveform y(dsp::correlate(adc_out.samples(), pulse_tmpl_adc_), config_.adc_rate);
  mf_timer.finish();

  // ---- Symbol bookkeeping --------------------------------------------------
  const std::size_t sps = config_.samples_per_bit_adc();
  const std::size_t t0 = result.timing_offset;
  const phy::Modulator& payload_mod = payload_modulator();
  const std::size_t overhead_symbols = tx_reference.overhead_symbols;
  const std::size_t payload_symbols = tx_reference.payload_symbols;
  const std::size_t total_symbols = overhead_symbols + payload_symbols;
  if (t0 + total_symbols * sps >= y.size()) {
    result.acquired = false;  // timing points past the capture
    return result;
  }

  // ---- RAKE / MF demodulation over the whole frame -------------------------
  const equalizer::SymbolTiming all_timing{t0, sps, total_symbols};
  const equalizer::RakeReceiver rake(config_.rake, est.cir, config_.adc_rate);
  result.rake_energy_capture = rake.energy_capture();

  obs::StageTimer rake_timer(obs::Stage::kCorrelateRake, total_symbols);
  std::vector<double> soft_all;
  if (config_.use_rake) {
    soft_all = rake.demodulate(y, all_timing);
  } else {
    // Single-finger matched filter on the strongest estimated path.
    const channel::Cir strongest = est.cir.strongest(1);
    const cplx w = strongest.taps().empty() ? cplx{1.0, 0.0} : strongest.taps().front().gain;
    const auto d = strongest.taps().empty()
                       ? std::size_t{0}
                       : static_cast<std::size_t>(
                             std::llround(strongest.taps().front().delay_s * config_.adc_rate));
    equalizer::SymbolTiming shifted = all_timing;
    shifted.t0 += d;
    soft_all = equalizer::matched_filter_soft(y, shifted, w);
  }
  rake_timer.finish();

  const obs::StageTimer demod_timer(obs::Stage::kDemodDecide, payload_symbols);

  // ---- Data-aided amplitude / SNR reference from the preamble --------------
  const BitVec& preamble_bits = tx.framer().preamble_bits();
  std::vector<double> aligned;
  aligned.reserve(std::min<std::size_t>(preamble_bits.size(), overhead_symbols));
  for (std::size_t m = 0; m < preamble_bits.size() && m < overhead_symbols; ++m) {
    const double sign = preamble_bits[m] ? -1.0 : 1.0;
    aligned.push_back(sign * soft_all[m]);
  }
  double amp_ref = 0.0;
  for (double v : aligned) amp_ref += v;
  amp_ref /= std::max<std::size_t>(aligned.size(), 1);
  result.amplitude_reference = amp_ref;
  if (aligned.size() >= 2) {
    result.snr_estimate_db = to_db(std::max(estimation::snr_data_aided(aligned), 1e-12));
  }

  // ---- Payload demodulation -------------------------------------------------
  BitVec decoded_body;
  const equalizer::SymbolTiming pay_timing{t0 + overhead_symbols * sps, sps, payload_symbols};

  const bool mlse_possible =
      config_.use_mlse && config_.modulation == phy::Modulation::kBpsk;
  bool mlse_done = false;
  if (mlse_possible) {
    // Viterbi demodulation runs on the RAKE combiner's symbol stream: the
    // channel estimate sets the fingers (energy capture), the trellis
    // resolves the residual ISI. The effective symbol-spaced response of
    // channel + combiner is learned data-aided on the known preamble -- PN
    // balance makes the correlation estimate nearly least-squares.
    const int memory = config_.mlse.memory;
    std::vector<cplx> g(static_cast<std::size_t>(memory) + 1, cplx{});
    std::size_t count = 0;
    for (std::size_t m = static_cast<std::size_t>(memory);
         m < preamble_bits.size() && m < overhead_symbols; ++m) {
      for (int l = 0; l <= memory; ++l) {
        const double a = preamble_bits[m - static_cast<std::size_t>(l)] ? -1.0 : 1.0;
        g[static_cast<std::size_t>(l)] += cplx(soft_all[m] * a, 0.0);
      }
      ++count;
    }
    if (count > 0) {
      for (auto& v : g) v /= static_cast<double>(count);
    }
    if (count > 16 && std::abs(g[0]) > 1e-9) {
      CplxVec obs(payload_symbols);
      for (std::size_t m = 0; m < payload_symbols; ++m) {
        obs[m] = cplx(soft_all[overhead_symbols + m], 0.0);
      }
      const equalizer::MlseDemodulator mlse(config_.mlse, g);
      decoded_body = mlse.demodulate(obs);
      mlse_done = true;
    }
  }

  if (!mlse_done) {
    std::vector<double> soft_pay;
    if (config_.modulation == phy::Modulation::kPpm) {
      const std::size_t ppm_off = sps / 2;
      soft_pay = config_.use_rake
                     ? rake.demodulate_ppm(y, pay_timing, ppm_off)
                     : equalizer::matched_filter_soft_ppm(y, pay_timing, ppm_off);
    } else {
      soft_pay.assign(soft_all.begin() + static_cast<std::ptrdiff_t>(overhead_symbols),
                      soft_all.begin() +
                          static_cast<std::ptrdiff_t>(overhead_symbols + payload_symbols));
      // Amplitude normalization for threshold demappers (OOK / 4-PAM).
      if (std::abs(amp_ref) > 1e-12) {
        for (auto& v : soft_pay) v /= amp_ref;
      }
    }
    result.payload_soft = soft_pay;  // outer FEC decoders want the soft stream
    decoded_body = payload_mod.demap(soft_pay);
  }

  // ---- Error accounting -------------------------------------------------------
  const std::size_t body_start = tx_reference.frame_bits.size() - tx_reference.body_bits;
  const BitVec* truth = expected_payload;
  BitVec tx_body;
  if (truth == nullptr) {
    tx_body.assign(tx_reference.frame_bits.begin() + static_cast<std::ptrdiff_t>(body_start),
                   tx_reference.frame_bits.end());
    truth = &tx_body;
  }
  const std::size_t n_cmp = std::min(decoded_body.size(), truth->size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n_cmp; ++i) {
    if ((decoded_body[i] != 0) != ((*truth)[i] != 0)) ++errors;
  }
  result.bit_errors = errors + (truth->size() - n_cmp);
  result.bits_compared = truth->size();
  result.payload.assign(decoded_body.begin(),
                        decoded_body.begin() +
                            static_cast<std::ptrdiff_t>(std::min(decoded_body.size(),
                                                                 tx_reference.payload.size())));
  return result;
}

}  // namespace uwb::txrx
