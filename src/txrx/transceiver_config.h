#pragma once
/// \file transceiver_config.h
/// \brief Configurations of the paper's two transceiver generations.
///
/// Gen-1 (Section 2, Fig. 1): single-chip *baseband* pulsed UWB SoC.
///   - Gaussian-monocycle pulses, no carrier.
///   - 2 GSps 4-way time-interleaved flash ADC.
///   - 193 kbps demonstrated link; PN polarity spreading, many pulses/bit.
///   - Fully digital timing synchronization, parallelized back end,
///     packet sync < 70 us.
///
/// Gen-2 (Section 3, Fig. 3): 3.1-10.6 GHz direct-conversion transceiver.
///   - 500 MHz RRC pulses upconverted to one of 14 channels.
///   - 100 Mbps (100 MHz PRF, BPSK, 1 pulse/bit).
///   - Direct conversion; two 5-bit SAR ADCs on I/Q.
///   - Channel estimation (<= 4-bit taps), programmable RAKE and Viterbi
///     (MLSE) demodulator, spectral monitoring -> RF notch.
///
/// Exact numerology: rates are chosen so every period is an integer number
/// of samples. Gen-1's PRF is 2 GHz / 648 = 3.0864 MHz; with 16 pulses/bit
/// the bit rate is 192.9 kbps (the paper's "193 kbps"). Gen-2's PRF is
/// 100 MHz exactly (10 ns bit, 10 samples at the 1 GSps ADC).

#include <cstddef>

#include "adc/flash_adc.h"
#include "adc/sar_adc.h"
#include "equalizer/mlse.h"
#include "equalizer/rake.h"
#include "estimation/channel_estimator.h"
#include "phy/modulation.h"
#include "phy/packet.h"
#include "pulse/pulse_shape.h"
#include "rf/front_end.h"

namespace uwb::txrx {

/// Generation-1 baseband transceiver configuration.
///
/// Preamble structure: the acquisition preamble is a *pulse-level* PN
/// sequence -- one chip of a degree-7 m-sequence per PRF frame, repeated
/// preamble_repetitions times (one period is 127 frames = 41.1 us). This is
/// what makes sub-70 us synchronization possible; a bit-level preamble at
/// 193 kbps would need milliseconds. The data section (SFD, header,
/// payload) then spreads each bit over pulses_per_bit polarity-scrambled
/// pulses.
struct Gen1Config {
  // Rates.
  double analog_fs = 4e9;          ///< simulation "analog" rate
  double adc_rate = 2e9;           ///< the paper's 2 GSps converter
  std::size_t frame_samples_adc = 648;  ///< samples per PRF frame at ADC rate
  int pulses_per_bit = 16;

  // Pulse. A -10 dB bandwidth near 1 GHz keeps the monocycle inside the
  // 2 GSps converter's Nyquist band (the chip's baseband design point).
  double pulse_sigma_s = 0.5e-9;

  // ADC (4-way interleaved flash).
  int adc_bits = 4;
  int adc_lanes = 4;
  double comparator_offset_sigma = 0.1;    ///< in LSB
  adc::InterleaveMismatch interleave{0.01, 0.005, 1e-12};
  double aperture_jitter_rms_s = 0.0;

  // Spreading / framing.
  int spread_msequence_degree = 4;   ///< >= log2(pulses_per_bit + 1)
  int preamble_pn_degree = 7;        ///< pulse-level PN (period 127 frames)
  int preamble_repetitions = 2;      ///< PN periods in the preamble
  phy::PacketConfig packet{};

  // Acquisition (two-stage, see Gen1Receiver). With these defaults the
  // modeled sync time is ceil(648/128)*8 frames + ceil(127/127)*160 frames
  // = 208 frames = 67.4 us -- inside the paper's 70 us budget.
  std::size_t acq_parallelism_stage1 = 128;  ///< sample-phase correlators
  std::size_t acq_parallelism_stage2 = 127;  ///< code-phase correlators
  int acq_integration_frames = 8;            ///< frames per stage-1 dwell
  int acq_stage2_window_frames = 160;        ///< stage-2 integration length
  double acq_threshold = 0.26;

  [[nodiscard]] double prf_hz() const noexcept {
    return adc_rate / static_cast<double>(frame_samples_adc);
  }
  [[nodiscard]] double bit_rate_hz() const noexcept {
    return prf_hz() / pulses_per_bit;
  }
  [[nodiscard]] std::size_t frame_samples_analog() const noexcept {
    return frame_samples_adc * static_cast<std::size_t>(analog_fs / adc_rate);
  }
};

/// Generation-2 direct-conversion transceiver configuration.
struct Gen2Config {
  // Rates.
  double analog_fs = 4e9;    ///< complex-baseband "analog" rate
  double adc_rate = 1e9;     ///< per-SAR sample rate (I and Q)
  double prf_hz = 100e6;     ///< 100 Mbps with 1 pulse/bit BPSK

  // Band plan.
  int channel_index = 4;     ///< default sub-band (~5 GHz carrier, Fig. 4)

  // Pulse.
  pulse::PulseSpec pulse{pulse::PulseShape::kRootRaisedCos, 500e6, 4e9, 0.5, 4};

  // Modulation.
  phy::Modulation modulation = phy::Modulation::kBpsk;

  // RF front end. Eb/N0 in link simulations is defined at the detector
  // input: the default front end is noise-transparent (NF 0 dB) so BER
  // curves compare directly against textbook references, and the cascade
  // noise figure enters through the link budget (channel::LinkBudget) or
  // by explicitly configuring lna.noise_figure_db as an experiment knob.
  rf::FrontEndParams front_end = [] {
    rf::FrontEndParams p;
    p.lna.noise_figure_db = 0.0;
    return p;
  }();

  // ADCs (two SARs on I and Q).
  adc::SarParams sar{5, 1.0, 0.01, 0.0};
  double aperture_jitter_rms_s = 0.0;

  // Framing.
  phy::PacketConfig packet{};

  // Back end.
  estimation::ChannelEstimatorConfig chanest{4, -20.0, 64, 256};
  equalizer::RakeConfig rake{equalizer::FingerPolicy::kSelective, 8};
  equalizer::MlseConfig mlse{3};
  bool use_rake = true;
  bool use_mlse = true;

  [[nodiscard]] double bit_rate_hz() const noexcept { return prf_hz; }
  [[nodiscard]] std::size_t samples_per_bit_adc() const noexcept {
    return static_cast<std::size_t>(adc_rate / prf_hz);
  }
  [[nodiscard]] std::size_t samples_per_bit_analog() const noexcept {
    return static_cast<std::size_t>(analog_fs / prf_hz);
  }
};

}  // namespace uwb::txrx
