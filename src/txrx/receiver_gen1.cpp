#include "txrx/receiver_gen1.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_utils.h"
#include "dsp/correlator.h"
#include "dsp/filter_design.h"
#include "dsp/fir_filter.h"
#include "obs/profile.h"

namespace uwb::txrx {

Gen1Receiver::Gen1Receiver(const Gen1Config& config, Rng& rng)
    : config_(config),
      sampler_(adc::SamplingParams{config.adc_rate, config.aperture_jitter_rms_s, 0.0}),
      adc_(config.adc_lanes,
           adc::FlashParams{config.adc_bits, 1.0, config.comparator_offset_sigma},
           config.interleave, rng) {
  detail::require(config.analog_fs >= config.adc_rate,
                  "Gen1Receiver: analog rate must be >= ADC rate");
  anti_alias_taps_ =
      dsp::design_lowpass(0.45 * config.adc_rate, config.analog_fs, 63);
  // Per-lane timing skew happens at the sample-and-hold; the skews are
  // static converter mismatch, so build the table once.
  lane_skews_s_.resize(static_cast<std::size_t>(adc_.num_lanes()));
  for (int k = 0; k < adc_.num_lanes(); ++k) {
    lane_skews_s_[static_cast<std::size_t>(k)] = adc_.lane_skew_s(k);
  }
}

std::span<const float> Gen1Receiver::digitize_and_filter(const float* rx, std::size_t n,
                                                         double fs, const Gen1Transmitter& tx,
                                                         Rng& rng) {
  // Anti-alias lowpass at the converter's Nyquist edge: the analog front
  // end band-limits before the 2 GSps sampler. Runs the blocked gather FIR
  // into the packet arena, no allocation.
  obs::StageTimer fe_timer(obs::Stage::kRxFrontend, n);
  ws_filtered_.resize(n);
  dsp::convolve_same_to(rx, n, anti_alias_taps_, ws_filtered_.data());

  // AGC measurement on the filtered signal: a converged AGC loads the flash
  // at ~1/4 full scale rms (see rf::AgcParams). The scale itself commutes
  // with linear-interpolation sampling, so it is applied to the (2x
  // shorter) sampled stream below rather than here.
  // Four independent accumulators break the FP-add dependency chain (the
  // power estimate is an AGC model input, not a bit-exact contract).
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto v0 = static_cast<double>(ws_filtered_[i]);
    const auto v1 = static_cast<double>(ws_filtered_[i + 1]);
    const auto v2 = static_cast<double>(ws_filtered_[i + 2]);
    const auto v3 = static_cast<double>(ws_filtered_[i + 3]);
    p0 += v0 * v0;
    p1 += v1 * v1;
    p2 += v2 * v2;
    p3 += v3 * v3;
  }
  for (; i < n; ++i) {
    const auto v = static_cast<double>(ws_filtered_[i]);
    p0 += v * v;
  }
  const double power_acc = (p0 + p1) + (p2 + p3);
  const double r = n > 0 ? std::sqrt(power_acc / static_cast<double>(n)) : 0.0;

  const std::size_t n_adc = sampler_.output_size(n, fs);
  ws_sampled_.resize(n_adc);
  sampler_.sample_interleaved_to(ws_filtered_.data(), n, fs, lane_skews_s_, rng,
                                 ws_sampled_.data());
  if (r > 0.0) {
    const auto gain = static_cast<float>(0.25 / r);
    for (std::size_t i = 0; i < n_adc; ++i) ws_sampled_[i] *= gain;
  }
  fe_timer.finish();

  obs::StageTimer adc_timer(obs::Stage::kAdcQuantize, n_adc);
  adc_.reset();
  ws_levels_.resize(n_adc);
  adc_.convert_block(ws_sampled_.data(), n_adc, ws_levels_.data());
  adc_timer.finish();

  // Matched filter with the monocycle.
  const obs::StageTimer mf_timer(obs::Stage::kCorrelateRake, n_adc);
  const RealVec& taps = tx.pulse_taps_adc();
  if (taps.empty() || n_adc < taps.size()) {
    ws_mf_.resize(0);
    return {};
  }
  ws_mf_.resize(n_adc - taps.size() + 1);
  dsp::correlate_to(ws_levels_.data(), n_adc, taps, ws_mf_.data());
  return {ws_mf_.data(), ws_mf_.size()};
}

Gen1AcqResult Gen1Receiver::acquire_on_mf(std::span<const float> mf,
                                          const Gen1Transmitter& tx) const {
  const obs::StageTimer acq_timer(obs::Stage::kSyncAcquire, mf.size());
  Gen1AcqResult result;
  const std::size_t F = config_.frame_samples_adc;
  const std::vector<double>& chips = tx.preamble_chips();
  const std::size_t pn_len = chips.size();
  const double frame_time = static_cast<double>(F) / config_.adc_rate;

  const auto k1 = static_cast<std::size_t>(config_.acq_integration_frames);
  const std::size_t num_frames = mf.size() / F;
  if (num_frames < 2 * k1 + pn_len + 1) {
    return result;  // capture too short to search
  }

  // ---- Stage 1: packet arrival + pulse phase -------------------------------
  // Square-law noncoherent combining over k1-frame groups: for each
  // candidate sample phase, sum mf^2 across the group's frames. In hardware
  // the correlator bank streams and a CFAR comparison against the measured
  // noise floor trips when the preamble arrives; here the running minimum
  // of earlier group metrics plays the noise-floor reference.
  struct Group {
    std::size_t phase = 0;
    double metric = 0.0;
  };
  std::vector<Group> groups;
  const std::size_t last_group = num_frames - k1 - pn_len;
  // Frame-major accumulation: the textbook phase-outer loop strides by F
  // through mf on every read; sweeping each frame contiguously into a bank
  // of per-phase accumulators touches the same values in the same per-phase
  // order (k ascending), so the metrics are bit-identical while the inner
  // loop vectorizes.
  ws_acq_.resize(F);
  for (std::size_t j0 = 0; j0 <= last_group; j0 += k1) {
    float* acc = ws_acq_.data();
    std::fill(acc, acc + F, 0.0f);
    for (std::size_t k = 0; k < k1; ++k) {
      const float* frame = mf.data() + (j0 + k) * F;
      for (std::size_t p = 0; p < F; ++p) {
        acc[p] += frame[p] * frame[p];
      }
    }
    Group g;
    for (std::size_t p = 0; p < F; ++p) {
      if (acc[p] > g.metric) {
        g.metric = acc[p];
        g.phase = p;
      }
    }
    groups.push_back(g);
  }
  // CFAR trip: first group whose metric rises 1.6x above the noise floor
  // seen so far. If nothing trips (e.g. the packet starts at the very
  // beginning of the capture and every group holds signal), fall back to
  // group zero -- which is then the correct arrival.
  std::size_t hit_group = 0;
  double floor_metric = groups.front().metric;
  for (std::size_t i = 1; i < groups.size(); ++i) {
    if (groups[i].metric >= 1.6 * floor_metric) {
      hit_group = i;
      break;
    }
    floor_metric = std::min(floor_metric, groups[i].metric);
  }
  // Phase from the strongest group at/after the trip (best phase SNR).
  std::size_t peak_group = hit_group;
  for (std::size_t i = hit_group; i < groups.size(); ++i) {
    if (groups[i].metric > groups[peak_group].metric) peak_group = i;
  }
  const std::size_t j0 = hit_group * k1;
  const std::size_t best_phase = groups[peak_group].phase;
  result.pulse_phase = best_phase;
  const std::size_t dwells1 = ceil_div(F, config_.acq_parallelism_stage1);

  // ---- Stage 2: code phase (cyclic correlation over the PN) ---------------
  // Per-frame despread samples starting right after the stage-1 window --
  // inside the preamble when the hit group is at its start. Integrating
  // past one PN period (acq_stage2_window_frames) sharpens the metric.
  const std::size_t start_frame = j0 + k1;
  const std::size_t window = std::min<std::size_t>(
      static_cast<std::size_t>(config_.acq_stage2_window_frames),
      num_frames > start_frame ? num_frames - start_frame : 0);
  if (window < pn_len) {
    return result;  // not enough capture left for stage 2
  }
  RealVec v(window);
  double v_energy = 0.0;
  for (std::size_t j = 0; j < window; ++j) {
    v[j] = mf[best_phase + (start_frame + j) * F];
    v_energy += v[j] * v[j];
  }
  std::size_t best_shift = 0;
  double best_corr = -1.0;
  for (std::size_t s = 0; s < pn_len; ++s) {
    double c = 0.0;
    for (std::size_t j = 0; j < window; ++j) {
      c += v[j] * chips[(j + s) % pn_len];
    }
    if (std::abs(c) > best_corr) {
      best_corr = std::abs(c);
      best_shift = s;
    }
  }
  const double denom =
      std::sqrt(std::max(v_energy, 1e-300) * static_cast<double>(window));
  result.stage2_metric = best_corr / denom;
  result.code_phase = best_shift;
  const std::size_t dwells2 = ceil_div(pn_len, config_.acq_parallelism_stage2);

  // Timing: with the preamble starting at frame u_f, the stage-2 window
  // sample v[j] = chip[(start_frame + j - u_f) mod pn], so the cyclic
  // correlation peaks at s = (start_frame - u_f) mod pn, giving
  // u_f = start_frame - s (mod pn).
  const std::size_t u_f =
      (start_frame + pn_len - (best_shift % pn_len)) % pn_len;
  result.timing_offset = best_phase + u_f * F;

  result.acquired = result.stage2_metric >= config_.acq_threshold;
  // Modeled real-time cost from preamble arrival: the stage-1 bank needs
  // ceil(F/P1) dwells of k1 frames to sweep all sample phases, then the
  // stage-2 bank ceil(pn/P2) observations of the integration window each.
  result.sync_time_s =
      static_cast<double>(dwells1) * static_cast<double>(k1) * frame_time +
      static_cast<double>(dwells2) * static_cast<double>(window) * frame_time;
  return result;
}

namespace {

/// Double-waveform entry points stage through the receiver's float arena:
/// one converting pass, then the single-precision pipeline.
void to_float_arena(const RealWaveform& rx, dsp::AlignedVec<float>& arena) {
  arena.resize(rx.size());
  const RealVec& s = rx.samples();
  for (std::size_t i = 0; i < s.size(); ++i) arena[i] = static_cast<float>(s[i]);
}

}  // namespace

Gen1AcqResult Gen1Receiver::acquire(const RealWaveform& rx, const Gen1Transmitter& tx,
                                    Rng& rng) {
  to_float_arena(rx, ws_rx_);
  return acquire({ws_rx_.data(), ws_rx_.size()}, rx.sample_rate(), tx, rng);
}

Gen1AcqResult Gen1Receiver::acquire(std::span<const float> rx, double fs,
                                    const Gen1Transmitter& tx, Rng& rng) {
  const std::span<const float> mf = digitize_and_filter(rx.data(), rx.size(), fs, tx, rng);
  return acquire_on_mf(mf, tx);
}

Gen1RxResult Gen1Receiver::receive(const RealWaveform& rx, const Gen1Transmitter& tx,
                                   const TxFrame& tx_reference, const Gen1RxOptions& options,
                                   Rng& rng) {
  to_float_arena(rx, ws_rx_);
  return receive({ws_rx_.data(), ws_rx_.size()}, rx.sample_rate(), tx, tx_reference,
                 options, rng);
}

Gen1RxResult Gen1Receiver::receive(std::span<const float> rx, double fs,
                                   const Gen1Transmitter& tx, const TxFrame& tx_reference,
                                   const Gen1RxOptions& options, Rng& rng) {
  Gen1RxResult result;
  const std::span<const float> mf = digitize_and_filter(rx.data(), rx.size(), fs, tx, rng);
  const std::size_t F = config_.frame_samples_adc;

  std::size_t preamble_start = 0;
  if (options.genie_timing) {
    preamble_start = options.genie_offset;
    result.acq.acquired = true;
    result.acq.timing_offset = preamble_start;
  } else {
    result.acq = acquire_on_mf(mf, tx);
    if (!result.acq.acquired) return result;
    // The acquisition pins timing modulo one PN period; the packet's
    // preamble starts an integer number of periods earlier, which does not
    // matter for data timing because the data section begins a known number
    // of frames after *any* period boundary only if we also know which
    // period we latched. The SFD search below resolves that ambiguity.
    preamble_start = result.acq.timing_offset % (tx.preamble_chips().size() * F);
  }

  // Data section: locate via the known frame count (genie/period-resolved)
  // then despread each bit.
  const obs::StageTimer demod_timer(obs::Stage::kDemodDecide,
                                    tx_reference.frame_bits.size());
  const std::size_t data_start_frame_nominal =
      preamble_start / F + tx.preamble_frames();
  const auto ppb = static_cast<std::size_t>(config_.pulses_per_bit);
  const std::size_t num_bits = tx_reference.frame_bits.size();
  const std::vector<double>& spread = tx.spread_chips();
  const std::size_t pulse_phase = preamble_start % F;

  // SFD alignment: try candidate data-start frames offset by whole PN
  // periods (ambiguity left by acquisition) and pick the one whose SFD
  // correlation is strongest.
  const std::size_t period = tx.preamble_chips().size();
  std::size_t best_start = data_start_frame_nominal;
  if (!options.genie_timing) {
    const phy::PacketFramer framer(config_.packet);
    const BitVec& sfd = framer.sfd_bits();
    double best_sfd = -1.0;
    for (int shift = 0; shift <= config_.preamble_repetitions; ++shift) {
      const std::size_t cand =
          data_start_frame_nominal + static_cast<std::size_t>(shift) * period;
      double corr = 0.0;
      for (std::size_t b = 0; b < sfd.size(); ++b) {
        double soft = 0.0;
        for (std::size_t k = 0; k < ppb; ++k) {
          const std::size_t idx = pulse_phase + (cand + b * ppb + k) * F;
          if (idx < mf.size()) soft += spread[k % spread.size()] * mf[idx];
        }
        corr += (sfd[b] ? -1.0 : 1.0) * soft;
      }
      if (corr > best_sfd) {
        best_sfd = corr;
        best_start = cand;
      }
    }
  }

  // Despread and slice the data bits.
  result.data_bits.resize(num_bits);
  std::size_t errors = 0;
  for (std::size_t b = 0; b < num_bits; ++b) {
    double soft = 0.0;
    for (std::size_t k = 0; k < ppb; ++k) {
      const std::size_t idx = pulse_phase + (best_start + b * ppb + k) * F;
      if (idx < mf.size()) soft += spread[k % spread.size()] * mf[idx];
    }
    result.data_bits[b] = soft < 0.0 ? 1 : 0;
    if ((result.data_bits[b] != 0) != (tx_reference.frame_bits[b] != 0)) ++errors;
  }
  result.bit_errors = errors;
  result.bits_compared = num_bits;
  return result;
}

}  // namespace uwb::txrx
