#pragma once
/// \file packet_batch.h
/// \brief Worker-local batched packet executor: runs a contiguous claim of
///        trial indices through one link, grouping trials that share a
///        cached channel realization so the link's composite-kernel cache
///        is hit once per realization per batch instead of rebuilt per
///        trial.
///
/// Determinism contract (what lets the engine hand out batches of any size
/// without changing a single byte of the result document): every trial in
/// the batch draws all of its randomness from `root.fork(index)` -- exactly
/// the stream the unbatched path uses -- and its outcome lands in the output
/// slot `index - first`. Batching only changes the *execution* order inside
/// one worker's claim; the engine still commits outcomes one trial at a time
/// in global index order under the stopping rule (engine/parallel_ber.h), so
/// results are byte-identical for any batch size and any worker count.

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "sim/ber_simulator.h"
#include "txrx/link.h"

namespace uwb::txrx {

/// Maps a global trial index to the shared channel realization the trial
/// must use (nullptr = the trial draws a fresh channel from its own Rng).
/// The sweep engine binds this to the point's resolved ChannelEnsemble;
/// the mapping must be a pure function of the index.
using ChannelResolver = std::function<const channel::Cir*(std::size_t index)>;

/// One worker's batched trial executor for a single sweep point. Not safe
/// for concurrent use (it drives one Link); the engine builds one per
/// worker, like the unbatched trial closures.
class PacketBatch {
 public:
  /// \p link is this worker's private link; \p options the point's trial
  /// options (record_metrics filter and sampling policy included);
  /// \p resolver the ensemble realization lookup (empty for fresh-draw
  /// points).
  PacketBatch(std::shared_ptr<Link> link, const TrialOptions& options,
              ChannelResolver resolver = {});

  /// Runs trials [first, first+count) and writes trial first+k's outcome to
  /// out[k]. Trials resolving to the same realization execute back-to-back
  /// (first-seen group order) so per-realization link state is built once;
  /// every outcome is still a pure function of root.fork(index).
  void run(std::size_t first, std::size_t count, const Rng& root,
           sim::TrialOutcome* out);

 private:
  [[nodiscard]] sim::TrialOutcome run_one(std::size_t index, const channel::Cir* cir,
                                          Rng& rng);

  std::shared_ptr<Link> link_;
  TrialOptions options_;
  ChannelResolver resolver_;

  // Batch scratch, reused across run() calls (zero steady-state
  // allocations once warm): per-trial resolved realization and the
  // group-ordered execution schedule.
  std::vector<const channel::Cir*> cirs_;
  std::vector<std::size_t> order_;
};

}  // namespace uwb::txrx
