#include "sync/correlator_bank.h"

#include <cmath>

#include "common/error.h"
#include "dsp/correlator.h"

namespace uwb::sync {

CorrelatorBank::CorrelatorBank(CorrelatorBankConfig config) : config_(config) {
  detail::require(config.parallelism >= 1, "CorrelatorBank: parallelism must be >= 1");
  detail::require(config.threshold > 0.0 && config.threshold < 1.0,
                  "CorrelatorBank: threshold must be in (0,1)");
}

namespace {

/// Shared search core over a precomputed normalized-correlation array.
SearchResult run_search(const RealVec& norm_corr, std::size_t max_phase,
                        const CorrelatorBankConfig& cfg, bool early_exit) {
  SearchResult result;
  const std::size_t limit = std::min(max_phase + 1, norm_corr.size());
  std::size_t phase = 0;
  while (phase < limit) {
    const std::size_t dwell_end = std::min(phase + cfg.parallelism, limit);
    ++result.dwells;
    for (; phase < dwell_end; ++phase) {
      ++result.phases_evaluated;
      const double m = std::abs(norm_corr[phase]);
      if (m > result.best.metric) {
        result.best.metric = m;
        result.best.phase = phase;
      }
    }
    if (early_exit && result.best.metric >= cfg.threshold) {
      result.threshold_crossed = true;
      return result;
    }
  }
  result.threshold_crossed = result.best.metric >= cfg.threshold;
  return result;
}

}  // namespace

SearchResult CorrelatorBank::search(const CplxVec& x, const CplxVec& tmpl,
                                    std::size_t max_phase) const {
  const RealVec nc = dsp::normalized_correlation(x, tmpl);
  detail::require(!nc.empty(), "CorrelatorBank::search: signal shorter than template");
  return run_search(nc, max_phase, config_, /*early_exit=*/true);
}

SearchResult CorrelatorBank::search(const RealVec& x, const RealVec& tmpl,
                                    std::size_t max_phase) const {
  const RealVec nc = dsp::normalized_correlation(x, tmpl);
  detail::require(!nc.empty(), "CorrelatorBank::search: signal shorter than template");
  return run_search(nc, max_phase, config_, /*early_exit=*/true);
}

SearchResult CorrelatorBank::search_exhaustive(const CplxVec& x, const CplxVec& tmpl,
                                               std::size_t max_phase) const {
  const RealVec nc = dsp::normalized_correlation(x, tmpl);
  detail::require(!nc.empty(), "CorrelatorBank::search_exhaustive: signal too short");
  return run_search(nc, max_phase, config_, /*early_exit=*/false);
}

}  // namespace uwb::sync
