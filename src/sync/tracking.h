#pragma once
/// \file tracking.h
/// \brief Fine timing tracking ("Fine Tracking Subsystem" / "PLL/DLL" of the
///        paper's block diagrams): an early-late gate delay-locked loop that
///        refines the coarse phase and follows slow clock drift.

#include <cstddef>

#include "common/types.h"

namespace uwb::sync {

/// DLL configuration.
struct DllConfig {
  double gain = 0.1;             ///< loop gain (samples of correction per update)
  std::size_t early_late_gap = 1;  ///< +/- offset of the early/late gates [samples]
  double max_correction = 4.0;   ///< clamp on accumulated correction [samples]
};

/// One tracking update's observables.
struct DllUpdate {
  double error = 0.0;        ///< early-late discriminator output
  double correction = 0.0;   ///< accumulated fractional-sample correction
};

/// Early-late gate DLL. Each update correlates the template at the punctual
/// phase and +/- gap samples; the normalized energy difference steers the
/// accumulated timing correction.
class DelayLockedLoop {
 public:
  explicit DelayLockedLoop(const DllConfig& config);

  [[nodiscard]] const DllConfig& config() const noexcept { return config_; }

  /// Processes one symbol/preamble-period worth of samples. \p x must cover
  /// [phase - gap, phase + gap + |tmpl|). Returns the update; the running
  /// correction is available via correction().
  DllUpdate update(const CplxVec& x, const CplxVec& tmpl, std::size_t phase);

  /// Current accumulated correction in (fractional) samples.
  [[nodiscard]] double correction() const noexcept { return correction_; }

  /// Punctual phase after correction (rounded to nearest sample).
  [[nodiscard]] std::size_t corrected_phase(std::size_t coarse_phase) const noexcept;

  void reset() noexcept { correction_ = 0.0; }

 private:
  DllConfig config_;
  double correction_ = 0.0;
};

}  // namespace uwb::sync
