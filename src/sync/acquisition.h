#pragma once
/// \file acquisition.h
/// \brief Coarse packet acquisition: a search/verify/lock state machine over
///        the preamble's PN phase ambiguity, with the sync-time accounting
///        used to reproduce the paper's "< 70 us" gen-1 claim (E2) and the
///        ~20 us preamble budget (E11).

#include <cstddef>

#include "common/types.h"
#include "sync/correlator_bank.h"

namespace uwb::sync {

/// Acquisition configuration.
struct AcquisitionConfig {
  CorrelatorBankConfig bank{};
  int verify_passes = 2;          ///< extra dwells confirming a candidate
  double verify_threshold = 0.5;  ///< threshold for verification passes
  double dwell_time_s = 0.0;      ///< time one dwell costs; 0 = derive from template
};

/// Acquisition outcome.
struct AcquisitionResult {
  bool acquired = false;
  std::size_t timing_offset = 0;  ///< detected start-of-preamble sample
  double metric = 0.0;            ///< winning correlation metric
  double sync_time_s = 0.0;       ///< modeled elapsed time to lock
  std::size_t dwells = 0;
  std::size_t verify_dwells = 0;
};

/// Coarse acquisition over a received buffer.
///
/// Timing model: each dwell costs dwell_time_s (defaulting to the template
/// duration: an integrate-over-one-PN-period correlation per candidate, as
/// in the paper's architecture where the parallelizer feeds P correlators at
/// the ADC rate). Lock requires the threshold crossing plus verify_passes
/// successful re-correlations at the found phase.
class CoarseAcquisition {
 public:
  explicit CoarseAcquisition(const AcquisitionConfig& config);

  [[nodiscard]] const AcquisitionConfig& config() const noexcept { return config_; }

  /// Runs acquisition of \p tmpl (the known preamble waveform) within the
  /// first \p search_window samples of \p x. \p fs converts dwells to time.
  [[nodiscard]] AcquisitionResult acquire(const CplxVec& x, const CplxVec& tmpl,
                                          std::size_t search_window, double fs) const;

  /// Real-signal version.
  [[nodiscard]] AcquisitionResult acquire(const RealVec& x, const RealVec& tmpl,
                                          std::size_t search_window, double fs) const;

 private:
  template <typename Vec>
  [[nodiscard]] AcquisitionResult acquire_impl(const Vec& x, const Vec& tmpl,
                                               std::size_t search_window, double fs) const;

  AcquisitionConfig config_;
};

}  // namespace uwb::sync
