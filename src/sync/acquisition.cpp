#include "sync/acquisition.h"

#include <cmath>

#include "common/error.h"
#include "dsp/correlator.h"

namespace uwb::sync {

CoarseAcquisition::CoarseAcquisition(const AcquisitionConfig& config) : config_(config) {
  detail::require(config.verify_passes >= 0, "CoarseAcquisition: verify passes must be >= 0");
  detail::require(config.verify_threshold > 0.0 && config.verify_threshold < 1.0,
                  "CoarseAcquisition: verify threshold must be in (0,1)");
}

namespace {

/// Normalized correlation at one specific phase.
template <typename Vec>
double correlation_at(const Vec& x, const Vec& tmpl, std::size_t phase) {
  if (phase + tmpl.size() > x.size()) return 0.0;
  double tmpl_energy = 0.0;
  double win_energy = 0.0;
  double mag;
  if constexpr (std::is_same_v<Vec, CplxVec>) {
    cplx acc{};
    for (std::size_t i = 0; i < tmpl.size(); ++i) {
      acc += x[phase + i] * std::conj(tmpl[i]);
      tmpl_energy += std::norm(tmpl[i]);
      win_energy += std::norm(x[phase + i]);
    }
    mag = std::abs(acc);
  } else {
    double acc = 0.0;
    for (std::size_t i = 0; i < tmpl.size(); ++i) {
      acc += x[phase + i] * tmpl[i];
      tmpl_energy += tmpl[i] * tmpl[i];
      win_energy += x[phase + i] * x[phase + i];
    }
    mag = std::abs(acc);
  }
  const double denom = std::sqrt(std::max(win_energy, 1e-300) * std::max(tmpl_energy, 1e-300));
  return mag / denom;
}

}  // namespace

template <typename Vec>
AcquisitionResult CoarseAcquisition::acquire_impl(const Vec& x, const Vec& tmpl,
                                                  std::size_t search_window, double fs) const {
  detail::require(!tmpl.empty(), "CoarseAcquisition: empty template");
  detail::require(fs > 0.0, "CoarseAcquisition: fs must be positive");

  const double dwell_s = (config_.dwell_time_s > 0.0)
                             ? config_.dwell_time_s
                             : static_cast<double>(tmpl.size()) / fs;

  AcquisitionResult result;
  const CorrelatorBank bank(config_.bank);
  const SearchResult sr = bank.search(x, tmpl, search_window);
  result.dwells = sr.dwells;
  result.metric = sr.best.metric;
  result.timing_offset = sr.best.phase;

  if (!sr.threshold_crossed) {
    result.sync_time_s = static_cast<double>(sr.dwells) * dwell_s;
    return result;  // acquisition failed within the window
  }

  // Verification: re-correlate at the candidate phase advanced by one PN
  // period per pass (the following preamble repetitions must also match).
  std::size_t confirmed = 0;
  for (int pass = 1; pass <= config_.verify_passes; ++pass) {
    const std::size_t phase = result.timing_offset + static_cast<std::size_t>(pass) * tmpl.size();
    ++result.verify_dwells;
    if (correlation_at(x, tmpl, phase) >= config_.verify_threshold) {
      ++confirmed;
    }
  }
  result.acquired = (confirmed == static_cast<std::size_t>(config_.verify_passes));
  result.sync_time_s =
      static_cast<double>(result.dwells + result.verify_dwells) * dwell_s;
  return result;
}

AcquisitionResult CoarseAcquisition::acquire(const CplxVec& x, const CplxVec& tmpl,
                                             std::size_t search_window, double fs) const {
  return acquire_impl(x, tmpl, search_window, fs);
}

AcquisitionResult CoarseAcquisition::acquire(const RealVec& x, const RealVec& tmpl,
                                             std::size_t search_window, double fs) const {
  return acquire_impl(x, tmpl, search_window, fs);
}

}  // namespace uwb::sync
