#include "sync/tracking.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dsp/correlator.h"

namespace uwb::sync {

DelayLockedLoop::DelayLockedLoop(const DllConfig& config) : config_(config) {
  detail::require(config.gain > 0.0, "DelayLockedLoop: gain must be positive");
  detail::require(config.early_late_gap >= 1, "DelayLockedLoop: gap must be >= 1");
  detail::require(config.max_correction > 0.0, "DelayLockedLoop: max correction must be > 0");
}

namespace {

double energy_at(const CplxVec& x, const CplxVec& tmpl, std::ptrdiff_t phase) {
  if (phase < 0) return 0.0;
  const auto p = static_cast<std::size_t>(phase);
  if (p + tmpl.size() > x.size()) return 0.0;
  return std::norm(dsp::dot_conj(x.data() + p, tmpl.data(), tmpl.size()));
}

}  // namespace

DllUpdate DelayLockedLoop::update(const CplxVec& x, const CplxVec& tmpl, std::size_t phase) {
  const auto gap = static_cast<std::ptrdiff_t>(config_.early_late_gap);
  const auto punctual = static_cast<std::ptrdiff_t>(corrected_phase(phase));

  const double e_early = energy_at(x, tmpl, punctual - gap);
  const double e_late = energy_at(x, tmpl, punctual + gap);
  const double e_punct = energy_at(x, tmpl, punctual);

  DllUpdate upd;
  const double denom = e_early + e_late + e_punct;
  if (denom > 1e-300) {
    // Positive error -> late gate stronger -> shift timing later.
    upd.error = (e_late - e_early) / denom;
    correction_ += config_.gain * upd.error * static_cast<double>(config_.early_late_gap);
    correction_ = std::clamp(correction_, -config_.max_correction, config_.max_correction);
  }
  upd.correction = correction_;
  return upd;
}

std::size_t DelayLockedLoop::corrected_phase(std::size_t coarse_phase) const noexcept {
  const double corrected = static_cast<double>(coarse_phase) + correction_;
  return corrected <= 0.0 ? 0 : static_cast<std::size_t>(std::llround(corrected));
}

}  // namespace uwb::sync
