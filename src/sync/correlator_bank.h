#pragma once
/// \file correlator_bank.h
/// \brief The parallel correlator bank of the paper's digital back end
///        (Fig. 1: "Parallelizer" + "Correlators"). A bank of P correlators
///        evaluates P candidate code phases per dwell; hardware parallelism
///        divides search time, which is exactly the mechanism behind the
///        gen-1 "packet synchronization in less than 70 us" claim.

#include <cstddef>

#include "common/types.h"

namespace uwb::sync {

/// Result of evaluating one candidate phase.
struct PhaseMetric {
  std::size_t phase = 0;   ///< candidate offset in samples
  double metric = 0.0;     ///< normalized correlation magnitude [0,1]
};

/// Search outcome over a phase window.
struct SearchResult {
  PhaseMetric best{};
  std::size_t phases_evaluated = 0;
  std::size_t dwells = 0;       ///< sequential dwell count = ceil(phases / parallelism)
  bool threshold_crossed = false;
};

/// Bank configuration.
struct CorrelatorBankConfig {
  std::size_t parallelism = 4;     ///< correlators evaluated per dwell
  double threshold = 0.6;          ///< normalized-correlation detect threshold
};

/// Evaluates candidate phases of a known template against the received
/// signal, \p parallelism at a time, stopping at the first dwell whose best
/// phase crosses the threshold (serial-search early termination).
class CorrelatorBank {
 public:
  explicit CorrelatorBank(CorrelatorBankConfig config);

  [[nodiscard]] const CorrelatorBankConfig& config() const noexcept { return config_; }

  /// Serial search with early termination. Phases are tried in order
  /// 0..max_phase; each dwell evaluates \p parallelism consecutive phases
  /// of normalized correlation between x[phase ... phase+|tmpl|) and tmpl.
  [[nodiscard]] SearchResult search(const CplxVec& x, const CplxVec& tmpl,
                                    std::size_t max_phase) const;

  /// Real-signal version (gen-1 baseband receiver).
  [[nodiscard]] SearchResult search(const RealVec& x, const RealVec& tmpl,
                                    std::size_t max_phase) const;

  /// Exhaustive variant: evaluates every phase and returns the global best
  /// (no early exit). Used by channel estimation to find the strongest path.
  [[nodiscard]] SearchResult search_exhaustive(const CplxVec& x, const CplxVec& tmpl,
                                               std::size_t max_phase) const;

 private:
  CorrelatorBankConfig config_;
};

}  // namespace uwb::sync
