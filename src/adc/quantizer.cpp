#include "adc/quantizer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uwb::adc {

std::vector<int> Adc::convert_block(const RealVec& x) {
  std::vector<int> codes(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) codes[i] = convert(x[i]);
  return codes;
}

RealVec Adc::digitize(const RealVec& x) {
  RealVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = level_of(convert(x[i]));
  return out;
}

UniformQuantizer::UniformQuantizer(int bits, double full_scale)
    : bits_(bits), full_scale_(full_scale) {
  detail::require(bits >= 1 && bits <= 24, "UniformQuantizer: bits must be in [1,24]");
  detail::require(full_scale > 0.0, "UniformQuantizer: full scale must be positive");
  num_codes_ = 1 << bits;
  lsb_ = 2.0 * full_scale / num_codes_;
}

int UniformQuantizer::convert(double x) noexcept {
  const double idx = std::floor((x + full_scale_) / lsb_);
  return static_cast<int>(std::clamp(idx, 0.0, static_cast<double>(num_codes_ - 1)));
}

double UniformQuantizer::level_of(int code) const noexcept {
  const int c = std::clamp(code, 0, num_codes_ - 1);
  return -full_scale_ + (static_cast<double>(c) + 0.5) * lsb_;
}

CplxVec digitize_iq(const CplxVec& x, Adc& adc_i, Adc& adc_q) {
  CplxVec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = {adc_i.level_of(adc_i.convert(x[i].real())),
              adc_q.level_of(adc_q.convert(x[i].imag()))};
  }
  return out;
}

double ideal_sqnr_db(int bits) { return 6.02 * bits + 1.76; }

}  // namespace uwb::adc
