#include "adc/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uwb::adc {

SampleAndHold::SampleAndHold(const SamplingParams& params) : params_(params) {
  detail::require(params.adc_rate_hz > 0.0, "SampleAndHold: ADC rate must be positive");
  detail::require(params.aperture_jitter_rms_s >= 0.0,
                  "SampleAndHold: jitter must be non-negative");
}

template <typename T>
std::vector<T> SampleAndHold::sample_impl(const std::vector<T>& x, double fs_in,
                                          const RealVec* lane_skews, Rng& rng) const {
  const double ratio = fs_in / params_.adc_rate_hz;
  detail::require(ratio >= 1.0 - 1e-9, "SampleAndHold: input rate below ADC rate");
  const auto n_out = static_cast<std::size_t>(
      std::floor(static_cast<double>(x.size()) / ratio));
  std::vector<T> out(n_out, T{});
  for (std::size_t k = 0; k < n_out; ++k) {
    double t_s = static_cast<double>(k) / params_.adc_rate_hz + params_.phase_offset_s;
    if (params_.aperture_jitter_rms_s > 0.0) {
      t_s += rng.gaussian(0.0, params_.aperture_jitter_rms_s);
    }
    if (lane_skews != nullptr && !lane_skews->empty()) {
      t_s += (*lane_skews)[k % lane_skews->size()];
    }
    const double pos = t_s * fs_in;
    if (pos < 0.0) continue;
    const auto i0 = static_cast<std::size_t>(pos);
    if (i0 + 1 >= x.size()) break;
    const double frac = pos - static_cast<double>(i0);
    out[k] = x[i0] * (1.0 - frac) + x[i0 + 1] * frac;
  }
  return out;
}

RealWaveform SampleAndHold::sample(const RealWaveform& analog, Rng& rng) const {
  return RealWaveform(sample_impl(analog.samples(), analog.sample_rate(), nullptr, rng),
                      params_.adc_rate_hz);
}

CplxWaveform SampleAndHold::sample(const CplxWaveform& analog, Rng& rng) const {
  return CplxWaveform(sample_impl(analog.samples(), analog.sample_rate(), nullptr, rng),
                      params_.adc_rate_hz);
}

RealWaveform SampleAndHold::sample_interleaved(const RealWaveform& analog,
                                               const RealVec& lane_skews_s, Rng& rng) const {
  return RealWaveform(sample_impl(analog.samples(), analog.sample_rate(), &lane_skews_s, rng),
                      params_.adc_rate_hz);
}

std::size_t SampleAndHold::output_size(std::size_t x_len, double fs_in) const noexcept {
  const double ratio = fs_in / params_.adc_rate_hz;
  return static_cast<std::size_t>(std::floor(static_cast<double>(x_len) / ratio));
}

std::size_t SampleAndHold::sample_interleaved_to(const double* x, std::size_t x_len,
                                                 double fs_in, const RealVec& lane_skews_s,
                                                 Rng& rng, double* out) const {
  const double ratio = fs_in / params_.adc_rate_hz;
  detail::require(ratio >= 1.0 - 1e-9, "SampleAndHold: input rate below ADC rate");
  const auto n_out = static_cast<std::size_t>(
      std::floor(static_cast<double>(x_len) / ratio));
  std::fill(out, out + n_out, 0.0);
  const std::size_t num_lanes = lane_skews_s.size();
  const bool jitter_free = params_.aperture_jitter_rms_s <= 0.0;

  if (jitter_free && num_lanes > 0) {
    // Hot path of the gen-1 front end: sampling instants are deterministic,
    // so the loop carries only a lane counter -- no RNG, no modulo, no
    // per-sample branch beyond the range clamp.
    std::size_t lane = 0;
    for (std::size_t k = 0; k < n_out; ++k) {
      const double t_s = static_cast<double>(k) / params_.adc_rate_hz +
                         params_.phase_offset_s + lane_skews_s[lane];
      lane = (lane + 1 == num_lanes) ? 0 : lane + 1;
      const double pos = t_s * fs_in;
      if (pos < 0.0) continue;
      const auto i0 = static_cast<std::size_t>(pos);
      if (i0 + 1 >= x_len) break;
      const double frac = pos - static_cast<double>(i0);
      out[k] = x[i0] * (1.0 - frac) + x[i0 + 1] * frac;
    }
    return n_out;
  }

  for (std::size_t k = 0; k < n_out; ++k) {
    double t_s = static_cast<double>(k) / params_.adc_rate_hz + params_.phase_offset_s;
    if (!jitter_free) {
      t_s += rng.gaussian(0.0, params_.aperture_jitter_rms_s);
    }
    if (num_lanes > 0) {
      t_s += lane_skews_s[k % num_lanes];
    }
    const double pos = t_s * fs_in;
    if (pos < 0.0) continue;
    const auto i0 = static_cast<std::size_t>(pos);
    if (i0 + 1 >= x_len) break;
    const double frac = pos - static_cast<double>(i0);
    out[k] = x[i0] * (1.0 - frac) + x[i0 + 1] * frac;
  }
  return n_out;
}

std::size_t SampleAndHold::sample_interleaved_to(const float* x, std::size_t x_len,
                                                 double fs_in, const RealVec& lane_skews_s,
                                                 Rng& rng, float* out) const {
  const double ratio = fs_in / params_.adc_rate_hz;
  detail::require(ratio >= 1.0 - 1e-9, "SampleAndHold: input rate below ADC rate");
  const auto n_out = static_cast<std::size_t>(
      std::floor(static_cast<double>(x_len) / ratio));
  std::fill(out, out + n_out, 0.0f);
  const std::size_t num_lanes = lane_skews_s.size();
  const bool jitter_free = params_.aperture_jitter_rms_s <= 0.0;
  const double inv_rate = 1.0 / params_.adc_rate_hz;

  if (jitter_free && num_lanes > 0 && num_lanes <= 64 &&
      ratio == std::floor(ratio) && ratio < 1e9) {
    // Integer oversampling ratio (the gen-1 chip: 4 GS/s analog over a
    // 2 GS/s converter): sampling instants advance by exactly `stride`
    // analog samples, so each lane's interpolation fraction is a constant
    // frac((phase + skew) * fs) and the whole resample collapses to a
    // strided lerp -- no per-sample floor or double math.
    const auto stride = static_cast<std::size_t>(ratio);
    std::ptrdiff_t off[64];
    float w0[64];
    float w1[64];
    std::ptrdiff_t min_off = 0;
    std::ptrdiff_t max_off = 0;
    for (std::size_t l = 0; l < num_lanes; ++l) {
      const double c = (params_.phase_offset_s + lane_skews_s[l]) * fs_in;
      const double fl = std::floor(c);
      off[l] = static_cast<std::ptrdiff_t>(fl);
      const auto fr = static_cast<float>(c - fl);
      w0[l] = 1.0f - fr;
      w1[l] = fr;
      min_off = std::min(min_off, off[l]);
      max_off = std::max(max_off, off[l]);
    }
    // Checked head/tail around an uncheckable core: k in [k_lo, k_hi) has
    // 0 <= k*stride + off[l] and k*stride + off[l] + 1 < x_len for every lane.
    const std::size_t k_lo =
        min_off < 0 ? (static_cast<std::size_t>(-min_off) + stride - 1) / stride : 0;
    std::size_t k_hi = 0;
    if (static_cast<std::ptrdiff_t>(x_len) >= max_off + 2) {
      k_hi = (x_len - 1 - static_cast<std::size_t>(max_off + 1)) / stride + 1;
    }
    k_hi = std::min(k_hi, n_out);
    const auto checked = [&](std::size_t begin, std::size_t end) {
      for (std::size_t k = begin; k < end; ++k) {
        const std::ptrdiff_t i0 =
            static_cast<std::ptrdiff_t>(k * stride) + off[k % num_lanes];
        if (i0 < 0 || static_cast<std::size_t>(i0) + 1 >= x_len) continue;
        const std::size_t l = k % num_lanes;
        out[k] = x[i0] * w0[l] + x[i0 + 1] * w1[l];
      }
    };
    checked(0, std::min(k_lo, n_out));
    std::size_t lane = k_lo % num_lanes;
    for (std::size_t k = k_lo; k < k_hi; ++k) {
      const float* xs = x + static_cast<std::ptrdiff_t>(k * stride) + off[lane];
      out[k] = xs[0] * w0[lane] + xs[1] * w1[lane];
      lane = (lane + 1 == num_lanes) ? 0 : lane + 1;
    }
    checked(std::max(k_hi, k_lo), n_out);
    return n_out;
  }

  if (jitter_free && num_lanes > 0) {
    std::size_t lane = 0;
    for (std::size_t k = 0; k < n_out; ++k) {
      const double t_s = static_cast<double>(k) * inv_rate + params_.phase_offset_s +
                         lane_skews_s[lane];
      lane = (lane + 1 == num_lanes) ? 0 : lane + 1;
      const double pos = t_s * fs_in;
      if (pos < 0.0) continue;
      const auto i0 = static_cast<std::size_t>(pos);
      if (i0 + 1 >= x_len) break;
      const auto frac = static_cast<float>(pos - static_cast<double>(i0));
      out[k] = x[i0] * (1.0f - frac) + x[i0 + 1] * frac;
    }
    return n_out;
  }

  for (std::size_t k = 0; k < n_out; ++k) {
    double t_s = static_cast<double>(k) * inv_rate + params_.phase_offset_s;
    if (!jitter_free) {
      t_s += rng.gaussian(0.0, params_.aperture_jitter_rms_s);
    }
    if (num_lanes > 0) {
      t_s += lane_skews_s[k % num_lanes];
    }
    const double pos = t_s * fs_in;
    if (pos < 0.0) continue;
    const auto i0 = static_cast<std::size_t>(pos);
    if (i0 + 1 >= x_len) break;
    const auto frac = static_cast<float>(pos - static_cast<double>(i0));
    out[k] = x[i0] * (1.0f - frac) + x[i0 + 1] * frac;
  }
  return n_out;
}

template std::vector<double> SampleAndHold::sample_impl<double>(const std::vector<double>&,
                                                                double, const RealVec*,
                                                                Rng&) const;
template std::vector<cplx> SampleAndHold::sample_impl<cplx>(const std::vector<cplx>&, double,
                                                            const RealVec*, Rng&) const;

}  // namespace uwb::adc
