#include "adc/sampling.h"

#include <cmath>

#include "common/error.h"

namespace uwb::adc {

SampleAndHold::SampleAndHold(const SamplingParams& params) : params_(params) {
  detail::require(params.adc_rate_hz > 0.0, "SampleAndHold: ADC rate must be positive");
  detail::require(params.aperture_jitter_rms_s >= 0.0,
                  "SampleAndHold: jitter must be non-negative");
}

template <typename T>
std::vector<T> SampleAndHold::sample_impl(const std::vector<T>& x, double fs_in,
                                          const RealVec* lane_skews, Rng& rng) const {
  const double ratio = fs_in / params_.adc_rate_hz;
  detail::require(ratio >= 1.0 - 1e-9, "SampleAndHold: input rate below ADC rate");
  const auto n_out = static_cast<std::size_t>(
      std::floor(static_cast<double>(x.size()) / ratio));
  std::vector<T> out(n_out, T{});
  for (std::size_t k = 0; k < n_out; ++k) {
    double t_s = static_cast<double>(k) / params_.adc_rate_hz + params_.phase_offset_s;
    if (params_.aperture_jitter_rms_s > 0.0) {
      t_s += rng.gaussian(0.0, params_.aperture_jitter_rms_s);
    }
    if (lane_skews != nullptr && !lane_skews->empty()) {
      t_s += (*lane_skews)[k % lane_skews->size()];
    }
    const double pos = t_s * fs_in;
    if (pos < 0.0) continue;
    const auto i0 = static_cast<std::size_t>(pos);
    if (i0 + 1 >= x.size()) break;
    const double frac = pos - static_cast<double>(i0);
    out[k] = x[i0] * (1.0 - frac) + x[i0 + 1] * frac;
  }
  return out;
}

RealWaveform SampleAndHold::sample(const RealWaveform& analog, Rng& rng) const {
  return RealWaveform(sample_impl(analog.samples(), analog.sample_rate(), nullptr, rng),
                      params_.adc_rate_hz);
}

CplxWaveform SampleAndHold::sample(const CplxWaveform& analog, Rng& rng) const {
  return CplxWaveform(sample_impl(analog.samples(), analog.sample_rate(), nullptr, rng),
                      params_.adc_rate_hz);
}

RealWaveform SampleAndHold::sample_interleaved(const RealWaveform& analog,
                                               const RealVec& lane_skews_s, Rng& rng) const {
  return RealWaveform(sample_impl(analog.samples(), analog.sample_rate(), &lane_skews_s, rng),
                      params_.adc_rate_hz);
}

template std::vector<double> SampleAndHold::sample_impl<double>(const std::vector<double>&,
                                                                double, const RealVec*,
                                                                Rng&) const;
template std::vector<cplx> SampleAndHold::sample_impl<cplx>(const std::vector<cplx>&, double,
                                                            const RealVec*, Rng&) const;

}  // namespace uwb::adc
