#pragma once
/// \file sampling.h
/// \brief Sample-and-hold front end: rate reduction from the "analog"
///        (oversampled) waveform to the ADC clock, with aperture jitter and
///        per-lane timing skew via fractional-delay interpolation.

#include "common/rng.h"
#include "common/types.h"
#include "common/waveform.h"

namespace uwb::adc {

/// Sampling parameters.
struct SamplingParams {
  double adc_rate_hz = 2e9;
  double aperture_jitter_rms_s = 0.0;
  double phase_offset_s = 0.0;  ///< static sampling-phase offset
};

/// Samples an oversampled "analog" waveform at the ADC clock. The input
/// rate must be an integer multiple of adc_rate_hz; sampling instants are
/// t_k = k/adc_rate + phase_offset + jitter_k, evaluated by linear
/// interpolation of the input.
class SampleAndHold {
 public:
  explicit SampleAndHold(const SamplingParams& params);

  [[nodiscard]] const SamplingParams& params() const noexcept { return params_; }

  [[nodiscard]] RealWaveform sample(const RealWaveform& analog, Rng& rng) const;
  [[nodiscard]] CplxWaveform sample(const CplxWaveform& analog, Rng& rng) const;

  /// Per-lane skewed sampling (time-interleaved converters): lane k of
  /// \p num_lanes has an extra static skew \p lane_skews_s[k].
  [[nodiscard]] RealWaveform sample_interleaved(const RealWaveform& analog,
                                                const RealVec& lane_skews_s, Rng& rng) const;

 private:
  template <typename T>
  [[nodiscard]] std::vector<T> sample_impl(const std::vector<T>& x, double fs_in,
                                           const RealVec* lane_skews, Rng& rng) const;

  SamplingParams params_;
};

}  // namespace uwb::adc
