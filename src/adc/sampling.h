#pragma once
/// \file sampling.h
/// \brief Sample-and-hold front end: rate reduction from the "analog"
///        (oversampled) waveform to the ADC clock, with aperture jitter and
///        per-lane timing skew via fractional-delay interpolation.

#include "common/rng.h"
#include "common/types.h"
#include "common/waveform.h"

namespace uwb::adc {

/// Sampling parameters.
struct SamplingParams {
  double adc_rate_hz = 2e9;
  double aperture_jitter_rms_s = 0.0;
  double phase_offset_s = 0.0;  ///< static sampling-phase offset
};

/// Samples an oversampled "analog" waveform at the ADC clock. The input
/// rate must be an integer multiple of adc_rate_hz; sampling instants are
/// t_k = k/adc_rate + phase_offset + jitter_k, evaluated by linear
/// interpolation of the input.
class SampleAndHold {
 public:
  explicit SampleAndHold(const SamplingParams& params);

  [[nodiscard]] const SamplingParams& params() const noexcept { return params_; }

  [[nodiscard]] RealWaveform sample(const RealWaveform& analog, Rng& rng) const;
  [[nodiscard]] CplxWaveform sample(const CplxWaveform& analog, Rng& rng) const;

  /// Per-lane skewed sampling (time-interleaved converters): lane k of
  /// \p num_lanes has an extra static skew \p lane_skews_s[k].
  [[nodiscard]] RealWaveform sample_interleaved(const RealWaveform& analog,
                                                const RealVec& lane_skews_s, Rng& rng) const;

  /// Number of output samples produced from \p x_len input samples at rate
  /// \p fs_in -- pre-size the buffer handed to sample_interleaved_to().
  [[nodiscard]] std::size_t output_size(std::size_t x_len, double fs_in) const noexcept;

  /// Interleaved sampling into a caller-owned buffer of output_size()
  /// doubles. Bit-identical to sample_interleaved(); with zero aperture
  /// jitter the inner loop runs a branch-free per-lane path that never
  /// touches the RNG. Returns the number of samples written.
  std::size_t sample_interleaved_to(const double* x, std::size_t x_len, double fs_in,
                                    const RealVec& lane_skews_s, Rng& rng,
                                    double* out) const;

  /// Single-precision variant (the gen-1 float sample arena). Sampling
  /// instants are still computed in double; the jitter-free lane path
  /// replaces the per-sample division by a reciprocal multiply (the float
  /// path carries no bit-identity contract) and the interpolation itself
  /// runs in float.
  std::size_t sample_interleaved_to(const float* x, std::size_t x_len, double fs_in,
                                    const RealVec& lane_skews_s, Rng& rng,
                                    float* out) const;

 private:
  template <typename T>
  [[nodiscard]] std::vector<T> sample_impl(const std::vector<T>& x, double fs_in,
                                           const RealVec* lane_skews, Rng& rng) const;

  SamplingParams params_;
};

}  // namespace uwb::adc
