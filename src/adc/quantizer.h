#pragma once
/// \file quantizer.h
/// \brief Uniform mid-rise quantization -- the idealized core every ADC
///        model refines, and the abstract Adc interface they share.
///
/// Codes are integers in [0, 2^bits - 1]; levels are the reconstruction
/// values in volts. Full scale is symmetric: [-full_scale, +full_scale].

#include <cstdint>
#include <memory>

#include "common/types.h"

namespace uwb::adc {

/// Abstract sample converter: analog value in, reconstructed level out.
/// Implementations model specific architectures (flash, SAR, interleaved).
class Adc {
 public:
  virtual ~Adc() = default;

  [[nodiscard]] virtual int bits() const noexcept = 0;
  [[nodiscard]] virtual double full_scale() const noexcept = 0;

  /// Converts one sample to a code in [0, 2^bits - 1].
  [[nodiscard]] virtual int convert(double x) noexcept = 0;

  /// Reconstruction level of a code.
  [[nodiscard]] virtual double level_of(int code) const noexcept = 0;

  /// Converts a buffer to codes.
  [[nodiscard]] std::vector<int> convert_block(const RealVec& x);

  /// Converts a buffer straight to reconstruction levels.
  [[nodiscard]] RealVec digitize(const RealVec& x);

  /// Resets any internal state (lane counters etc.).
  virtual void reset() noexcept {}
};

/// Ideal uniform mid-rise quantizer.
class UniformQuantizer final : public Adc {
 public:
  UniformQuantizer(int bits, double full_scale = 1.0);

  [[nodiscard]] int bits() const noexcept override { return bits_; }
  [[nodiscard]] double full_scale() const noexcept override { return full_scale_; }
  [[nodiscard]] int convert(double x) noexcept override;
  [[nodiscard]] double level_of(int code) const noexcept override;

  /// Quantization step (LSB size).
  [[nodiscard]] double lsb() const noexcept { return lsb_; }

 private:
  int bits_;
  double full_scale_;
  int num_codes_;
  double lsb_;
};

/// Quantizes a complex waveform through a pair of converters (the gen-2
/// "two 5-bit SAR ADCs" on I and Q). The converters may be the same object
/// when lane mismatch is not modeled.
CplxVec digitize_iq(const CplxVec& x, Adc& adc_i, Adc& adc_q);

/// Theoretical SQNR of an n-bit quantizer with a full-scale sine [dB].
double ideal_sqnr_db(int bits);

}  // namespace uwb::adc
