#pragma once
/// \file flash_adc.h
/// \brief Flash converter with per-comparator threshold offsets, and the
///        4-way time-interleaved wrapper of the gen-1 chip's "2 GSPS FLASH
///        Interleaved Analog to Digital Converter" (paper Fig. 1).

#include <memory>

#include "adc/quantizer.h"
#include "common/rng.h"

namespace uwb::adc {

/// Flash ADC parameters.
struct FlashParams {
  int bits = 4;
  double full_scale = 1.0;
  double comparator_offset_sigma = 0.0;  ///< offset stddev as a fraction of one LSB
};

/// 2^bits - 1 comparators against a resistor ladder; each threshold carries
/// a static random offset (drawn once at construction, as in silicon).
class FlashAdc final : public Adc {
 public:
  FlashAdc(const FlashParams& params, Rng& rng);

  [[nodiscard]] int bits() const noexcept override { return params_.bits; }
  [[nodiscard]] double full_scale() const noexcept override { return params_.full_scale; }
  [[nodiscard]] int convert(double x) noexcept override;
  [[nodiscard]] double level_of(int code) const noexcept override;

  /// The (offset-perturbed) threshold array, ascending.
  [[nodiscard]] const RealVec& thresholds() const noexcept { return thresholds_; }

 private:
  FlashParams params_;
  RealVec thresholds_;
  double lsb_;
};

/// Per-lane mismatch of the interleaved converter.
struct InterleaveMismatch {
  double gain_sigma = 0.0;       ///< lane gain error stddev (fraction, e.g. 0.01)
  double offset_sigma = 0.0;     ///< lane offset stddev (fraction of full scale)
  double timing_skew_sigma_s = 0.0;  ///< lane sample-time skew stddev [s]
};

/// M-way time-interleaved ADC: lane k converts samples k, k+M, k+2M, ...
/// Lane gain/offset mismatch is applied per conversion; timing skew is
/// handled upstream by SampleAndHold (which knows the analog waveform).
class TimeInterleavedAdc final : public Adc {
 public:
  /// Builds \p num_lanes flash sub-ADCs with independent comparator offsets
  /// and lane mismatch drawn from \p mismatch.
  TimeInterleavedAdc(int num_lanes, const FlashParams& lane_params,
                     const InterleaveMismatch& mismatch, Rng& rng);

  [[nodiscard]] int bits() const noexcept override;
  [[nodiscard]] double full_scale() const noexcept override;

  /// Converts one sample through the current lane, then advances the lane
  /// counter (call reset() at a packet boundary for reproducibility).
  [[nodiscard]] int convert(double x) noexcept override;
  [[nodiscard]] double level_of(int code) const noexcept override;

  /// Converts \p n samples and writes each one's reconstruction level:
  /// bit-identical to calling level_of(convert(x[i])) in a loop (same lane
  /// rotation, gain/offset perturbation and thermometer count), but the
  /// comparator bank runs branch-free -- code = sum of (threshold <= v)
  /// over the sorted ladder -- instead of a per-sample binary search.
  void convert_block(const double* x, std::size_t n, double* levels) noexcept;

  /// Single-precision block conversion (the gen-1 float sample arena).
  /// Same lane rotation and thermometer count against float-rounded ladders
  /// built once at construction; with a shared full scale the reconstruction
  /// levels +/-(c + 0.5) * lsb are exact in float for converter resolutions
  /// up to the dyadic limit, so only threshold-crossing samples can differ
  /// from the double path.
  void convert_block(const float* x, std::size_t n, float* levels) noexcept;

  void reset() noexcept override { lane_ = 0; }

  [[nodiscard]] int num_lanes() const noexcept { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] double lane_gain(int lane) const { return gains_.at(static_cast<std::size_t>(lane)); }
  [[nodiscard]] double lane_offset(int lane) const { return offsets_.at(static_cast<std::size_t>(lane)); }
  [[nodiscard]] double lane_skew_s(int lane) const { return skews_s_.at(static_cast<std::size_t>(lane)); }

 private:
  std::vector<FlashAdc> lanes_;
  RealVec gains_;
  RealVec offsets_;
  RealVec skews_s_;
  std::size_t lane_ = 0;
  int last_lane_used_ = 0;

  // Float mirrors for the single-precision block path, built once at
  // construction: per-lane ladders padded to a multiple of 8 with +inf (the
  // thermometer count loop then has a fixed vectorizable trip count).
  std::vector<std::vector<float>> thr_f_;
  std::vector<float> gains_f_;
  std::vector<float> offsets_f_;
  float level_base_f_ = 0.0f;  ///< level_of(0) = -full_scale + lsb/2
  float lsb_f_ = 0.0f;
  // Transposed ladder for the pattern-blocked 4-lane path: row t holds
  // threshold t of every lane, so a block of num_lanes consecutive samples
  // compares against contiguous unit-stride rows (vectorizes across the
  // block instead of needing a horizontal reduction per sample).
  std::vector<float> thr_t_;
  std::size_t thr_rows_ = 0;  ///< unpadded ladder length (2^bits - 1)
};

}  // namespace uwb::adc
