#include "adc/sar_adc.h"

#include <cmath>

#include "common/error.h"

namespace uwb::adc {

SarAdc::SarAdc(const SarParams& params, Rng& rng)
    : params_(params), noise_rng_(rng.fork(0x5a7c0de)) {
  detail::require(params.bits >= 1 && params.bits <= 16, "SarAdc: bits must be in [1,16]");
  detail::require(params.full_scale > 0.0, "SarAdc: full scale must be positive");

  // Binary-weighted cap DAC over the 2*FS input range: MSB weight FS,
  // halving down to the LSB. Bit k (0 = MSB) is built from 2^(bits-1-k)
  // unit capacitors, so its relative mismatch shrinks as 1/sqrt(units).
  weights_.resize(static_cast<std::size_t>(params.bits));
  double nominal = params.full_scale;
  for (int k = 0; k < params.bits; ++k) {
    const double units = std::pow(2.0, params.bits - 1 - k);
    const double rel_sigma = params.cap_mismatch_sigma / std::sqrt(units);
    weights_[static_cast<std::size_t>(k)] = nominal * (1.0 + rng.gaussian(0.0, rel_sigma));
    nominal /= 2.0;
  }
}

int SarAdc::convert(double x) noexcept {
  // Successive approximation from the bottom of the range.
  double dac = -params_.full_scale;
  int code = 0;
  for (int k = 0; k < params_.bits; ++k) {
    const double trial = dac + weights_[static_cast<std::size_t>(k)];
    double decision_input = x;
    if (params_.comparator_noise > 0.0) {
      decision_input += noise_rng_.gaussian(0.0, params_.comparator_noise);
    }
    if (decision_input >= trial) {
      dac = trial;
      code |= 1 << (params_.bits - 1 - k);
    }
  }
  return code;
}

double SarAdc::level_of(int code) const noexcept {
  double v = -params_.full_scale;
  for (int k = 0; k < params_.bits; ++k) {
    if (code & (1 << (params_.bits - 1 - k))) {
      v += weights_[static_cast<std::size_t>(k)];
    }
  }
  // Center of the LSB bin.
  return v + weights_.back() / 2.0;
}

}  // namespace uwb::adc
