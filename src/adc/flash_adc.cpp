#include "adc/flash_adc.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.h"

namespace uwb::adc {

FlashAdc::FlashAdc(const FlashParams& params, Rng& rng) : params_(params) {
  detail::require(params.bits >= 1 && params.bits <= 10, "FlashAdc: bits must be in [1,10]");
  detail::require(params.full_scale > 0.0, "FlashAdc: full scale must be positive");
  const int num_codes = 1 << params.bits;
  lsb_ = 2.0 * params.full_scale / num_codes;
  thresholds_.resize(static_cast<std::size_t>(num_codes - 1));
  for (int k = 1; k < num_codes; ++k) {
    const double nominal = -params.full_scale + k * lsb_;
    const double offset = rng.gaussian(0.0, params.comparator_offset_sigma * lsb_);
    thresholds_[static_cast<std::size_t>(k - 1)] = nominal + offset;
  }
  // A real flash keeps its ladder ordered even with offsets: bubble-error
  // correction in the thermometer decoder amounts to sorting.
  std::sort(thresholds_.begin(), thresholds_.end());
}

int FlashAdc::convert(double x) noexcept {
  // Thermometer: count comparators tripped (thresholds ascending).
  const auto it = std::upper_bound(thresholds_.begin(), thresholds_.end(), x);
  return static_cast<int>(std::distance(thresholds_.begin(), it));
}

double FlashAdc::level_of(int code) const noexcept {
  const int num_codes = 1 << params_.bits;
  const int c = std::clamp(code, 0, num_codes - 1);
  return -params_.full_scale + (static_cast<double>(c) + 0.5) * lsb_;
}

TimeInterleavedAdc::TimeInterleavedAdc(int num_lanes, const FlashParams& lane_params,
                                       const InterleaveMismatch& mismatch, Rng& rng) {
  detail::require(num_lanes >= 1 && num_lanes <= 64,
                  "TimeInterleavedAdc: lanes must be in [1,64]");
  lanes_.reserve(static_cast<std::size_t>(num_lanes));
  for (int k = 0; k < num_lanes; ++k) {
    lanes_.emplace_back(lane_params, rng);
    gains_.push_back(1.0 + rng.gaussian(0.0, mismatch.gain_sigma));
    offsets_.push_back(rng.gaussian(0.0, mismatch.offset_sigma * lane_params.full_scale));
    skews_s_.push_back(rng.gaussian(0.0, mismatch.timing_skew_sigma_s));
  }
  // Float mirrors for the single-precision block path. Ladders are padded
  // to a multiple of 8 with +inf so the count loop's trip count is fixed
  // and vectorizable; +inf never trips a comparator.
  const double lsb = 2.0 * lane_params.full_scale / (1 << lane_params.bits);
  lsb_f_ = static_cast<float>(lsb);
  level_base_f_ = static_cast<float>(-lane_params.full_scale + 0.5 * lsb);
  thr_f_.resize(lanes_.size());
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    const RealVec& thr = lanes_[k].thresholds();
    const std::size_t padded = (thr.size() + 7) / 8 * 8;
    thr_f_[k].assign(padded, std::numeric_limits<float>::infinity());
    for (std::size_t t = 0; t < thr.size(); ++t) {
      thr_f_[k][t] = static_cast<float>(thr[t]);
    }
    gains_f_.push_back(static_cast<float>(gains_[k]));
    offsets_f_.push_back(static_cast<float>(offsets_[k]));
  }
  thr_rows_ = lanes_.front().thresholds().size();
  thr_t_.resize(thr_rows_ * lanes_.size());
  for (std::size_t t = 0; t < thr_rows_; ++t) {
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      thr_t_[t * lanes_.size() + k] = static_cast<float>(lanes_[k].thresholds()[t]);
    }
  }
}

int TimeInterleavedAdc::bits() const noexcept { return lanes_.front().bits(); }

double TimeInterleavedAdc::full_scale() const noexcept { return lanes_.front().full_scale(); }

int TimeInterleavedAdc::convert(double x) noexcept {
  const std::size_t lane = lane_;
  lane_ = (lane_ + 1) % lanes_.size();
  last_lane_used_ = static_cast<int>(lane);
  // Lane gain/offset error applied to the analog input before conversion.
  const double perturbed = gains_[lane] * x + offsets_[lane];
  return lanes_[lane].convert(perturbed);
}

double TimeInterleavedAdc::level_of(int code) const noexcept {
  return lanes_[static_cast<std::size_t>(last_lane_used_)].level_of(code);
}

void TimeInterleavedAdc::convert_block(const double* x, std::size_t n,
                                       double* levels) noexcept {
  const std::size_t num_lanes = lanes_.size();
  std::size_t lane = lane_;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = gains_[lane] * x[i] + offsets_[lane];
    const RealVec& thr = lanes_[lane].thresholds();
    // Thermometer decode: upper_bound's count of thresholds <= v, computed
    // branch-free over the whole (sorted) ladder.
    int code = 0;
    const std::size_t num_thr = thr.size();
    for (std::size_t t = 0; t < num_thr; ++t) {
      code += static_cast<int>(thr[t] <= v);
    }
    levels[i] = lanes_[lane].level_of(code);
    lane = (lane + 1) % num_lanes;
  }
  if (n > 0) {
    last_lane_used_ = static_cast<int>((lane + num_lanes - 1) % num_lanes);
  }
  lane_ = lane;
}

void TimeInterleavedAdc::convert_block(const float* x, std::size_t n,
                                       float* levels) noexcept {
  const std::size_t num_lanes = lanes_.size();
  std::size_t lane = lane_;
  std::size_t i = 0;
  // Pattern-blocked path for the gen-1 4-lane converter starting on lane 0
  // (the reset() state): four consecutive samples hit lanes 0..3, so each
  // transposed ladder row compares 4-wide against the block with no
  // per-sample horizontal reduction. Bit-identical to the scalar loop --
  // same compares against the same float ladders, in a different order that
  // never changes any per-sample count.
  if (num_lanes == 4 && lane == 0) {
    const float g0 = gains_f_[0], g1 = gains_f_[1], g2 = gains_f_[2], g3 = gains_f_[3];
    const float o0 = offsets_f_[0], o1 = offsets_f_[1], o2 = offsets_f_[2],
                o3 = offsets_f_[3];
    const std::size_t rows = thr_rows_;
    for (; i + 4 <= n; i += 4) {
      const float v[4] = {g0 * x[i] + o0, g1 * x[i + 1] + o1, g2 * x[i + 2] + o2,
                          g3 * x[i + 3] + o3};
      std::int32_t code[4] = {};
      const float* row = thr_t_.data();
      for (std::size_t t = 0; t < rows; ++t, row += 4) {
        for (int l = 0; l < 4; ++l) {
          code[l] += static_cast<std::int32_t>(row[l] <= v[l]);
        }
      }
      for (int l = 0; l < 4; ++l) {
        levels[i + l] = level_base_f_ + static_cast<float>(code[l]) * lsb_f_;
      }
    }
    // lane stays 0 after each whole block of 4.
  }
  for (; i < n; ++i) {
    const float v = gains_f_[lane] * x[i] + offsets_f_[lane];
    const float* thr = thr_f_[lane].data();
    const std::size_t num_thr = thr_f_[lane].size();  // padded, multiple of 8
    std::int32_t code = 0;
    for (std::size_t t = 0; t < num_thr; ++t) {
      code += static_cast<std::int32_t>(thr[t] <= v);
    }
    levels[i] = level_base_f_ + static_cast<float>(code) * lsb_f_;
    lane = (lane + 1) % num_lanes;
  }
  if (n > 0) {
    last_lane_used_ = static_cast<int>((lane + num_lanes - 1) % num_lanes);
  }
  lane_ = lane;
}

}  // namespace uwb::adc
