#include "adc/flash_adc.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uwb::adc {

FlashAdc::FlashAdc(const FlashParams& params, Rng& rng) : params_(params) {
  detail::require(params.bits >= 1 && params.bits <= 10, "FlashAdc: bits must be in [1,10]");
  detail::require(params.full_scale > 0.0, "FlashAdc: full scale must be positive");
  const int num_codes = 1 << params.bits;
  lsb_ = 2.0 * params.full_scale / num_codes;
  thresholds_.resize(static_cast<std::size_t>(num_codes - 1));
  for (int k = 1; k < num_codes; ++k) {
    const double nominal = -params.full_scale + k * lsb_;
    const double offset = rng.gaussian(0.0, params.comparator_offset_sigma * lsb_);
    thresholds_[static_cast<std::size_t>(k - 1)] = nominal + offset;
  }
  // A real flash keeps its ladder ordered even with offsets: bubble-error
  // correction in the thermometer decoder amounts to sorting.
  std::sort(thresholds_.begin(), thresholds_.end());
}

int FlashAdc::convert(double x) noexcept {
  // Thermometer: count comparators tripped (thresholds ascending).
  const auto it = std::upper_bound(thresholds_.begin(), thresholds_.end(), x);
  return static_cast<int>(std::distance(thresholds_.begin(), it));
}

double FlashAdc::level_of(int code) const noexcept {
  const int num_codes = 1 << params_.bits;
  const int c = std::clamp(code, 0, num_codes - 1);
  return -params_.full_scale + (static_cast<double>(c) + 0.5) * lsb_;
}

TimeInterleavedAdc::TimeInterleavedAdc(int num_lanes, const FlashParams& lane_params,
                                       const InterleaveMismatch& mismatch, Rng& rng) {
  detail::require(num_lanes >= 1 && num_lanes <= 64,
                  "TimeInterleavedAdc: lanes must be in [1,64]");
  lanes_.reserve(static_cast<std::size_t>(num_lanes));
  for (int k = 0; k < num_lanes; ++k) {
    lanes_.emplace_back(lane_params, rng);
    gains_.push_back(1.0 + rng.gaussian(0.0, mismatch.gain_sigma));
    offsets_.push_back(rng.gaussian(0.0, mismatch.offset_sigma * lane_params.full_scale));
    skews_s_.push_back(rng.gaussian(0.0, mismatch.timing_skew_sigma_s));
  }
}

int TimeInterleavedAdc::bits() const noexcept { return lanes_.front().bits(); }

double TimeInterleavedAdc::full_scale() const noexcept { return lanes_.front().full_scale(); }

int TimeInterleavedAdc::convert(double x) noexcept {
  const std::size_t lane = lane_;
  lane_ = (lane_ + 1) % lanes_.size();
  last_lane_used_ = static_cast<int>(lane);
  // Lane gain/offset error applied to the analog input before conversion.
  const double perturbed = gains_[lane] * x + offsets_[lane];
  return lanes_[lane].convert(perturbed);
}

double TimeInterleavedAdc::level_of(int code) const noexcept {
  return lanes_[static_cast<std::size_t>(last_lane_used_)].level_of(code);
}

}  // namespace uwb::adc
