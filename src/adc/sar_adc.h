#pragma once
/// \file sar_adc.h
/// \brief Successive-approximation-register ADC with capacitor-DAC
///        mismatch -- the paper's gen-2 converters ("two 5-bit successive
///        approximation register ADCs", Fig. 3).

#include "adc/quantizer.h"
#include "common/rng.h"

namespace uwb::adc {

/// SAR parameters.
struct SarParams {
  int bits = 5;
  double full_scale = 1.0;
  double cap_mismatch_sigma = 0.0;  ///< per-cap relative mismatch stddev
  double comparator_noise = 0.0;    ///< rms comparator input noise [V]
};

/// Binary-search conversion against a binary-weighted capacitor DAC whose
/// weights carry static random mismatch (drawn once, like a real part).
class SarAdc final : public Adc {
 public:
  SarAdc(const SarParams& params, Rng& rng);

  [[nodiscard]] int bits() const noexcept override { return params_.bits; }
  [[nodiscard]] double full_scale() const noexcept override { return params_.full_scale; }

  /// Runs the \p bits-step successive approximation (with comparator noise
  /// drawn per decision when configured).
  [[nodiscard]] int convert(double x) noexcept override;

  /// Reconstruction using the *actual* (mismatched) weights -- a SAR's code
  /// maps back through the same DAC, so INL follows the mismatch.
  [[nodiscard]] double level_of(int code) const noexcept override;

  /// The mismatched bit weights, MSB first [V].
  [[nodiscard]] const RealVec& weights() const noexcept { return weights_; }

 private:
  SarParams params_;
  RealVec weights_;        ///< weight of each bit decision, MSB first
  mutable Rng noise_rng_;  ///< comparator noise stream
};

}  // namespace uwb::adc
