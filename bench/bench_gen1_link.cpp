// E3 (Section 2): "A wireless link of 193 kbps was demonstrated with this
// transceiver." BER vs Eb/N0 of the gen-1 baseband link (4-bit interleaved
// flash, PN despreading) against the antipodal theory curve.
//
// Runs on the parallel sweep engine via the "gen1_waterfall" registry
// scenario; raw points land in bench/results/gen1_waterfall.json.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/math_utils.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE3;
  bench::print_header("E3 / Section 2", "gen-1 193 kbps link, BER vs Eb/N0", seed);

  const txrx::Gen1Config config = sim::gen1_fast();
  std::printf("bit rate %.1f kbps, %d pulses/bit, %d-bit 4-way flash @ 2 GSps\n\n",
              config.bit_rate_hz() / 1e3, config.pulses_per_bit, config.adc_bits);

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(30, bench::fast_mode() ? 4000 : 20000);

  engine::JsonSink json(engine::default_result_path("gen1_waterfall", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::SweepResult result = sweep.run_named("gen1_waterfall", {&json});

  sim::Table table({"Eb/N0", "BER measured", "BER theory (BPSK)", "impl loss"});
  for (const auto& record : result.records) {
    const double ebn0 = std::stod(record.spec.tag("ebn0_db"));
    const sim::BerPoint& point = record.ber;
    const double theory = bpsk_awgn_ber(from_db(ebn0));
    // Implementation loss: dB shift needed for theory to match measurement.
    double loss = 0.0;
    if (point.ber > 0.0 && point.ber < 0.5) {
      const double eff = q_function_inv(point.ber);
      const double eff_ebn0 = eff * eff / 2.0;
      loss = ebn0 - to_db(eff_ebn0);
    }
    table.add_row({sim::Table::db(ebn0, 0), sim::Table::sci(point.ber),
                   sim::Table::sci(theory),
                   point.ber > 0.0 ? sim::Table::db(loss) : "n/a"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());
  std::printf("\nShape check: waterfall parallel to the BPSK curve with a small\n"
              "implementation loss (ADC quantization, sampling phase, interleave\n"
              "mismatch) -- the operating margin that let the chip demonstrate its\n"
              "193 kbps link.\n");
  return 0;
}
