// E9 (Section 3): "The digital back end detects the presence of an
// interferer and estimates its frequency that may be used in the front end
// notch filter." Detection probability and frequency accuracy vs SIR, and
// the BER recovered by closing the monitor -> notch loop.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE9;
  bench::print_header("E9 / Section 3", "spectral monitor: detect, estimate, notch", seed);

  const double true_freq = 150e6;
  const int packets = bench::fast_mode() ? 10 : 40;

  // --- Detection and frequency estimation vs SIR ---------------------------
  sim::Table det({"SIR", "P(detect)", "freq RMSE", "peak/median"});
  for (double sir : {10.0, 0.0, -10.0, -20.0}) {
    txrx::Gen2Config config = sim::gen2_fast();
    txrx::Gen2Link link(config, seed + static_cast<uint64_t>(100 + sir));
    txrx::TrialOptions options;
    options.payload_bits = 200;
    options.ebn0_db = 12.0;
    options.interferer = true;
    options.interferer_sir_db = sir;
    options.interferer_freq_hz = true_freq;

    int detected = 0;
    double err_sq = 0.0, pom = 0.0;
    for (int p = 0; p < packets; ++p) {
      const auto trial = link.run_packet_full(options);
      if (trial.rx.interferer.detected) {
        ++detected;
        const double e = trial.rx.interferer.frequency_hz - true_freq;
        err_sq += e * e;
      }
      pom += trial.rx.interferer.peak_over_median_db;
    }
    det.add_row({sim::Table::db(sir, 0),
                 sim::Table::percent(static_cast<double>(detected) / packets, 0),
                 detected > 0 ? sim::Table::num(std::sqrt(err_sq / detected) / 1e6, 2) + " MHz"
                              : "--",
                 sim::Table::db(pom / packets)});
  }
  std::printf("%s", det.to_string().c_str());

  // --- Closing the loop: BER with and without the notch ---------------------
  std::printf("\nBER at Eb/N0 = 10 dB with a CW interferer at SIR = -15 dB:\n\n");
  sim::Table ber({"configuration", "BER"});
  txrx::Gen2Config config = sim::gen2_fast();
  const auto stop = bench::stop_rule(30, 50000);
  {
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.ebn0_db = 10.0;
    txrx::Gen2Link link(config, seed);
    ber.add_row({"clean channel", sim::Table::sci(bench::link_ber(link, options, stop).ber)});
  }
  {
    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.ebn0_db = 10.0;
    options.interferer = true;
    options.interferer_sir_db = -15.0;
    options.interferer_freq_hz = true_freq;
    txrx::Gen2Link link(config, seed);
    ber.add_row({"interferer, notch off",
                 sim::Table::sci(bench::link_ber(link, options, stop).ber)});
    options.auto_notch = true;
    txrx::Gen2Link link2(config, seed);
    ber.add_row({"interferer, monitor->notch",
                 sim::Table::sci(bench::link_ber(link2, options, stop).ber)});
  }
  std::printf("%s", ber.to_string().c_str());
  std::printf("\nShape check: reliable detection once the tone clears the UWB floor by a\n"
              "few dB, sub-MHz frequency estimates, and most of the jammed link's loss\n"
              "recovered when the estimate drives the RF notch.\n");
  return 0;
}
