// E9 (Section 3): "The digital back end detects the presence of an
// interferer and estimates its frequency that may be used in the front end
// notch filter." Detection probability and frequency accuracy vs SIR, and
// the BER recovered by closing the monitor -> notch loop.
//
// Both halves run on the parallel sweep engine via registry scenarios:
// "gen2_spectral_monitor" records the detection metrics per SIR point,
// "gen2_interferer_notch" measures the notch-off vs monitor->notch BER.
// Raw points land in bench/results/gen2_spectral_monitor.json.

#include <cstdio>

#include "bench_util.h"
#include "engine/scenario_registry.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "sim/scenario.h"
#include "txrx/link.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE9;
  bench::print_header("E9 / Section 3", "spectral monitor: detect, estimate, notch", seed);

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();

  // --- Detection and frequency estimation vs SIR ---------------------------
  // Detection statistics need packets, not bit errors: a fixed
  // trial budget per point, no error target.
  sweep_config.stop = bench::stop_rule(1000000, 20000);

  engine::JsonSink json(engine::default_result_path("gen2_spectral_monitor", "json"));
  engine::SweepEngine engine(sweep_config);
  const engine::ScenarioSpec monitor =
      engine::ScenarioRegistry::global().make("gen2_spectral_monitor");
  const engine::SweepResult result = engine.run(monitor, {&json});

  sim::Table det({"SIR", "P(detect)", "|freq err|", "peak/median"});
  for (const auto& record : result.records) {
    const double p_detect =
        bench::metric_mean(record.metrics, txrx::metric_names::kInterfererDetected);
    const double freq_err =
        bench::metric_mean(record.metrics, txrx::metric_names::kInterfererFreqErr, -1.0);
    det.add_row({record.spec.tag("sir_db") + " dB", sim::Table::percent(p_detect, 0),
                 freq_err >= 0.0 ? sim::Table::num(freq_err / 1e6, 2) + " MHz" : "--",
                 sim::Table::db(bench::metric_mean(record.metrics,
                                                   txrx::metric_names::kInterfererPom))});
  }
  std::printf("%s", det.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());

  // --- Closing the loop: BER with and without the notch ---------------------
  std::printf("\nBER at Eb/N0 = 12 dB on CM1 with a CW interferer (gen2_interferer_notch):\n\n");
  sweep_config.stop = bench::stop_rule(30, 50000);
  engine::SweepEngine ber_engine(sweep_config);
  const engine::ScenarioSpec notch =
      engine::ScenarioRegistry::global().make("gen2_interferer_notch");
  const engine::SweepResult ber_result = ber_engine.run(notch, {});

  sim::Table ber({"SIR", "notch", "BER", "ci95"});
  for (const auto& record : ber_result.records) {
    ber.add_row({record.spec.tag("sir_db") + " dB", record.spec.tag("notch"),
                 sim::Table::sci(record.ber.ber), sim::Table::sci(record.ber.ci95)});
  }
  std::printf("%s", ber.to_string().c_str());
  std::printf("\nShape check: reliable detection once the tone clears the UWB floor by a\n"
              "few dB, sub-MHz frequency estimates, and most of the jammed link's loss\n"
              "recovered when the estimate drives the RF notch.\n");
  return 0;
}
