// E12 (Section 3): the discrete prototype allows "the comparison between
// different modulation schemes" within a 500 MHz bandwidth. BER vs Eb/N0
// for BPSK / OOK / 2-PPM / 4-PAM on the same pulse engine, against theory.

#include <cstdio>

#include "bench_util.h"
#include "common/math_utils.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE12;
  bench::print_header("E12 / Section 3", "modulation comparison on the 500 MHz pulse engine",
                      seed);

  const phy::Modulation schemes[] = {phy::Modulation::kBpsk, phy::Modulation::kOok,
                                     phy::Modulation::kPpm, phy::Modulation::kPam4};

  sim::Table table({"Eb/N0", "BPSK", "OOK", "2-PPM", "4-PAM"});
  for (double ebn0 : {6.0, 8.0, 10.0}) {
    std::vector<std::string> row = {sim::Table::db(ebn0, 0)};
    for (auto scheme : schemes) {
      txrx::Gen2Config config = sim::gen2_fast();
      config.modulation = scheme;
      config.use_mlse = false;

      txrx::Gen2Link link(config, seed);
      txrx::TrialOptions options;
      options.payload_bits = 400;
      options.ebn0_db = ebn0;

      const auto stop = bench::stop_rule(40, 100000);
      row.push_back(sim::Table::sci(bench::link_ber(link, options, stop).ber));
    }
    table.add_row(row);
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nTheory at the same Eb/N0 (for reference):\n\n");
  sim::Table theory({"Eb/N0", "BPSK", "OOK", "2-PPM", "4-PAM"});
  for (double ebn0 : {6.0, 8.0, 10.0}) {
    const double lin = from_db(ebn0);
    theory.add_row({sim::Table::db(ebn0, 0), sim::Table::sci(bpsk_awgn_ber(lin)),
                    sim::Table::sci(ook_awgn_ber(lin)), sim::Table::sci(ppm_awgn_ber(lin)),
                    sim::Table::sci(pam4_awgn_ber(lin))});
  }
  std::printf("%s", theory.to_string().c_str());
  std::printf("\nShape check: BPSK leads by ~3 dB over OOK/PPM (antipodal vs orthogonal),\n"
              "4-PAM trades ~1.3 dB for double throughput -- the comparison the paper's\n"
              "discrete prototype was built to run.\n");
  return 0;
}
