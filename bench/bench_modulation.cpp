// E12 (Section 3): the discrete prototype allows "the comparison between
// different modulation schemes" within a 500 MHz bandwidth. BER vs Eb/N0
// for BPSK / OOK / 2-PPM / 4-PAM on the same pulse engine, against theory.
//
// Runs on the parallel sweep engine via the "gen2_modulation" registry
// scenario (modulation x Eb/N0 grid); raw points land in
// bench/results/gen2_modulation.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/math_utils.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE12;
  bench::print_header("E12 / Section 3", "modulation comparison on the 500 MHz pulse engine",
                      seed);

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(40, 100000);

  engine::JsonSink json(engine::default_result_path("gen2_modulation", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::SweepResult result = sweep.run_named("gen2_modulation", {&json});

  const std::vector<std::string> schemes = {"bpsk", "ook", "ppm", "pam4"};
  const std::vector<std::string> ebn0s = {"8", "12", "16"};

  sim::Table table({"Eb/N0", "BPSK", "OOK", "2-PPM", "4-PAM"});
  for (const std::string& ebn0 : ebn0s) {
    std::vector<std::string> row = {ebn0 + " dB"};
    for (const std::string& tag : schemes) {
      const engine::PointRecord* point =
          result.find({{"modulation", tag}, {"ebn0_db", ebn0}});
      if (point == nullptr) {
        std::fprintf(stderr, "bench_modulation: no point for modulation=%s ebn0_db=%s\n",
                     tag.c_str(), ebn0.c_str());
        return 1;
      }
      row.push_back(sim::Table::sci(point->ber.ber));
    }
    table.add_row(row);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());

  std::printf("\nTheory at the same Eb/N0 (for reference):\n\n");
  sim::Table theory({"Eb/N0", "BPSK", "OOK", "2-PPM", "4-PAM"});
  for (double ebn0 : {8.0, 12.0, 16.0}) {
    const double lin = from_db(ebn0);
    theory.add_row({sim::Table::db(ebn0, 0), sim::Table::sci(bpsk_awgn_ber(lin)),
                    sim::Table::sci(ook_awgn_ber(lin)), sim::Table::sci(ppm_awgn_ber(lin)),
                    sim::Table::sci(pam4_awgn_ber(lin))});
  }
  std::printf("%s", theory.to_string().c_str());
  std::printf("\nShape check: BPSK leads by ~3 dB over OOK/PPM (antipodal vs orthogonal),\n"
              "4-PAM trades ~1.3 dB for double throughput -- the comparison the paper's\n"
              "discrete prototype was built to run.\n");
  return 0;
}
