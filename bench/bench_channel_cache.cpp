// Channel-ensemble cache bench: what sharing Saleh-Valenzuela realizations
// across trials and sweep points buys (see engine/channel_cache.h and
// docs/channel_cache.md).
//
// Two measurements land in bench/results/BENCH_channel_cache.json so the
// trajectory accumulates PR over PR (CI runs this in fast mode and uploads
// the JSON as an artifact):
//
//  * rows[]: per-CM packets/sec through one gen-2 link, fresh per-trial
//    S-V draws vs a precomputed 16-realization ensemble (identical trial
//    streams otherwise; the delta is the per-trial generation cost).
//  * grid: draws-per-grid for a gen2_cm_grid channel-axis group run on the
//    sweep engine -- fresh mode pays one S-V draw per multipath trial,
//    ensemble mode pays exactly `count` per group -- plus the measured
//    sweep wall-clock both ways.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/channel_cache.h"
#include "engine/scenario_registry.h"
#include "engine/sweep_engine.h"
#include "sim/scenario.h"
#include "txrx/link.h"

namespace {

using namespace uwb;

constexpr std::size_t kEnsembleCount = 16;

struct CacheRow {
  std::string channel;
  std::size_t trials = 0;
  double fresh_pps = 0.0;
  double cached_pps = 0.0;

  [[nodiscard]] double speedup() const {
    return fresh_pps > 0.0 ? cached_pps / fresh_pps : 0.0;
  }
};

struct GridNumbers {
  std::string scenario;
  std::size_t trials = 0;
  std::size_t fresh_sv_draws = 0;   ///< one per committed multipath trial
  std::size_t cached_sv_draws = 0;  ///< cache-reported: count per group
  std::size_t ensemble_count = 0;
  double fresh_s = 0.0;
  double cached_s = 0.0;
};

template <typename TrialFn>
double packets_per_sec(std::size_t trials, uint64_t seed, TrialFn&& run_trial) {
  const Rng root(seed);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < trials; ++i) {
    Rng trial_rng = root.fork(i);
    run_trial(i, trial_rng);
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count() > 0.0 ? static_cast<double>(trials) / elapsed.count() : 0.0;
}

CacheRow measure_link(int cm, std::size_t trials, uint64_t seed) {
  txrx::Gen2Link link(sim::gen2_fast(), seed);
  txrx::TrialOptions fresh_options;
  fresh_options.cm = cm;
  fresh_options.ebn0_db = 14.0;
  fresh_options.payload_bits = 300;

  txrx::TrialOptions cached_options = fresh_options;
  cached_options.channel_source.mode = txrx::ChannelSource::Mode::kEnsemble;
  cached_options.channel_source.ensemble_count = kEnsembleCount;
  const engine::ChannelEnsemble ensemble = engine::make_ensemble(
      channel::cm_by_index(cm), cached_options.channel_source.ensemble_seed, kEnsembleCount);

  CacheRow row{"CM" + std::to_string(cm), trials, 0.0, 0.0};
  row.fresh_pps = packets_per_sec(trials, seed, [&](std::size_t, Rng& rng) {
    (void)link.run_packet(fresh_options, rng);
  });
  row.cached_pps = packets_per_sec(trials, seed, [&](std::size_t i, Rng& rng) {
    txrx::TrialContext context;
    context.channel = &ensemble.realization_for_trial(i);
    (void)link.run_packet(cached_options, rng, context);
  });
  return row;
}

GridNumbers measure_grid(uint64_t seed) {
  // One channel-axis group of the registry's gen2_cm_grid: CM3 across the
  // full Eb/N0 x backend grid (6 points sharing one ensemble).
  engine::ScenarioSpec scenario = engine::ScenarioRegistry::global().make("gen2_cm_grid");
  engine::restrict_scenario(scenario, "channel", "CM3");

  GridNumbers grid;
  grid.scenario = "gen2_cm_grid channel=CM3";
  grid.ensemble_count = kEnsembleCount;

  engine::SweepConfig config;
  config.seed = seed;
  config.workers = bench::worker_count();
  config.stop = bench::stop_rule(20, 20000);

  {
    const auto start = std::chrono::steady_clock::now();
    const engine::SweepResult fresh = engine::SweepEngine(config).run(scenario);
    grid.fresh_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                       .count();
    for (const auto& record : fresh.records) {
      grid.trials += record.ber.trials;
      grid.fresh_sv_draws += record.ber.trials;  // fresh mode: one draw per trial
    }
  }
  {
    for (engine::PointSpec& point : scenario.points) {
      point.link.options.channel_source.mode = txrx::ChannelSource::Mode::kEnsemble;
      point.link.options.channel_source.ensemble_count = kEnsembleCount;
    }
    engine::ChannelCache cache;  // private instance: exact draw accounting
    config.channel_cache = &cache;
    const auto start = std::chrono::steady_clock::now();
    (void)engine::SweepEngine(config).run(scenario);
    grid.cached_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                        .count();
    grid.cached_sv_draws = cache.stats().sv_draws;
  }
  return grid;
}

void write_json(const std::string& path, const std::vector<CacheRow>& rows,
                const GridNumbers& grid) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::binary);
  out << "{\n  \"bench\": \"channel_cache\",\n";
  out << "  \"fast_mode\": " << (bench::fast_mode() ? "true" : "false") << ",\n";
  out << "  \"ensemble_count\": " << kEnsembleCount << ",\n";
  out << "  \"unit\": \"packets_per_sec\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CacheRow& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"gen\": \"gen2\", \"channel\": \"%s\", \"trials\": %zu, "
                  "\"fresh_pps\": %.3f, \"cached_pps\": %.3f, \"speedup\": %.3f}%s\n",
                  r.channel.c_str(), r.trials, r.fresh_pps, r.cached_pps, r.speedup(),
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"grid\": {\"scenario\": \"%s\", \"trials\": %zu, "
                "\"fresh_sv_draws\": %zu, \"cached_sv_draws\": %zu, "
                "\"ensemble_count\": %zu, \"fresh_s\": %.3f, \"cached_s\": %.3f}\n",
                grid.scenario.c_str(), grid.trials, grid.fresh_sv_draws,
                grid.cached_sv_draws, grid.ensemble_count, grid.fresh_s, grid.cached_s);
  out << buf << "}\n";
}

}  // namespace

int main() {
  const uint64_t seed = 0xCACE;
  bench::print_header("CHANNEL CACHE", "fresh per-trial S-V draws vs shared ensemble", seed);

  const std::size_t trials = bench::fast_mode() ? 8 : 48;
  std::vector<CacheRow> rows;
  for (int cm = 1; cm <= 4; ++cm) {
    rows.push_back(measure_link(cm, trials, seed + static_cast<uint64_t>(cm)));
    std::printf("  gen2 %-4s  %8.2f -> %8.2f pkt/s  (%.2fx)\n", rows.back().channel.c_str(),
                rows.back().fresh_pps, rows.back().cached_pps, rows.back().speedup());
  }

  const GridNumbers grid = measure_grid(seed);
  std::printf("\n  %s: %zu committed trials\n", grid.scenario.c_str(), grid.trials);
  std::printf("  S-V draws: fresh %zu vs cached %zu (ensemble of %zu shared by the group)\n",
              grid.fresh_sv_draws, grid.cached_sv_draws, grid.ensemble_count);
  std::printf("  sweep wall-clock: %.2f s fresh, %.2f s cached\n", grid.fresh_s,
              grid.cached_s);

  const std::string path = "bench/results/BENCH_channel_cache.json";
  write_json(path, rows, grid);
  std::printf("\n(results: %s)\n", path.c_str());
  return 0;
}
