// E13 (Section 3): "This receiver allows us to trade off power dissipation
// with signal processing complexity, quality of service and data rate,
// adapting to channel conditions." Energy-per-bit vs BER across back-end
// configurations -- the reconfiguration ladder.
//
// Runs on the parallel sweep engine via the "gen2_backend_ladder" registry
// scenario (including the rate-1/2 coded rung); the power columns are
// computed from each point's resolved Gen2Config. Raw points land in
// bench/results/gen2_backend_ladder.json.

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "txrx/power_model.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE13;
  bench::print_header("E13 / Section 3", "power vs complexity vs QoS reconfiguration ladder",
                      seed);

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(40, 60000);

  engine::JsonSink json(engine::default_result_path("gen2_backend_ladder", "json"));
  engine::CsvSink csv(engine::default_result_path("gen2_backend_ladder", "csv"));
  engine::SweepEngine sweep(sweep_config);
  const engine::SweepResult result = sweep.run_named("gen2_backend_ladder", {&json, &csv});

  const std::map<std::string, std::string> rung_names = {
      {"minimal", "minimal   (2 fingers, no MLSE, 3-bit ADC)"},
      {"low", "low       (4 fingers, no MLSE, 4-bit ADC)"},
      {"nominal", "nominal   (8 fingers, MLSE 8st, 5-bit ADC)"},
      {"maximal", "maximal   (16 fingers, MLSE 32st, 6-bit ADC)"},
      {"coded", "coded     (rate-1/2 K=7, 50 Mbps info)"},
  };

  sim::Table table({"configuration", "RX power", "energy/bit", "BER (CM3, 14 dB)"});
  for (const auto& record : result.records) {
    const std::string rung = record.spec.tag("backend");
    const auto name = rung_names.find(rung);
    const auto power = txrx::gen2_power(record.spec.link.gen2());
    // The coded rung halves the information rate, doubling energy per
    // information bit at the same transceiver operating point.
    const double info_scale = record.spec.link.options.fec.has_value() ? 2.0 : 1.0;
    table.add_row(
        {name != rung_names.end() ? name->second : rung,
         sim::Table::num(power.total_w() * 1e3, 1) + " mW",
         sim::Table::num(info_scale * txrx::gen2_energy_per_bit_j(record.spec.link.gen2()) * 1e12,
                         1) +
             " pJ/b",
         sim::Table::sci(record.ber.ber)});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\n(results: %s, %s)\n", json.path().c_str(), csv.path().c_str());
  std::printf("\nShape check: each rung buys BER with milliwatts. A controller watching\n"
              "the channel (SNR estimator, CIR length) can walk this ladder at runtime --\n"
              "\"adapting to channel conditions\", the closing promise of Section 3.\n");
  return 0;
}
