// E13 (Section 3): "This receiver allows us to trade off power dissipation
// with signal processing complexity, quality of service and data rate,
// adapting to channel conditions." Energy-per-bit vs BER across back-end
// configurations -- the reconfiguration ladder.

#include <cstdio>

#include "bench_util.h"
#include "sim/scenario.h"
#include "txrx/power_model.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE13;
  bench::print_header("E13 / Section 3", "power vs complexity vs QoS reconfiguration ladder",
                      seed);

  struct Rung {
    const char* name;
    std::size_t fingers;
    bool mlse;
    int memory;
    int adc_bits;
  };
  const Rung ladder[] = {
      {"minimal   (2 fingers, no MLSE, 3-bit ADC)", 2, false, 1, 3},
      {"low       (4 fingers, no MLSE, 4-bit ADC)", 4, false, 1, 4},
      {"nominal   (8 fingers, MLSE 8st, 5-bit ADC)", 8, true, 3, 5},
      {"maximal   (16 fingers, MLSE 32st, 6-bit ADC)", 16, true, 5, 6},
  };

  sim::Table table({"configuration", "RX power", "energy/bit", "BER (CM3, 14 dB)"});
  for (const auto& rung : ladder) {
    txrx::Gen2Config config = sim::gen2_fast();
    config.rake.num_fingers = rung.fingers;
    config.use_mlse = rung.mlse;
    config.mlse.memory = rung.memory;
    config.sar.bits = rung.adc_bits;

    txrx::Gen2LinkOptions options;
    options.payload_bits = 300;
    options.cm = 3;
    options.ebn0_db = 14.0;

    txrx::Gen2Link link(config, seed);
    const auto stop = bench::stop_rule(40, 60000);
    const sim::BerPoint point = bench::gen2_ber(link, options, stop);

    const auto power = txrx::gen2_power(config);
    table.add_row({rung.name, sim::Table::num(power.total_w() * 1e3, 1) + " mW",
                   sim::Table::num(txrx::gen2_energy_per_bit_j(config) * 1e12, 1) + " pJ/b",
                   sim::Table::sci(point.ber)});
  }
  // Coded rung: rate-1/2 K=7 halves the information rate (50 Mbps) but
  // buys coding gain -- the "data rate" axis of the paper's trade-off.
  {
    txrx::Gen2Config config = sim::gen2_fast();
    txrx::Gen2LinkOptions options;
    options.payload_bits = 200;
    options.cm = 3;
    options.ebn0_db = 14.0;
    options.fec = fec::k7_rate_half();
    txrx::Gen2Link link(config, seed);
    const auto stop = bench::stop_rule(40, 60000);
    const sim::BerPoint point = bench::gen2_ber(link, options, stop);
    const auto power = txrx::gen2_power(config);
    table.add_row({"coded     (rate-1/2 K=7, 50 Mbps info)",
                   sim::Table::num(power.total_w() * 1e3, 1) + " mW",
                   sim::Table::num(2.0 * txrx::gen2_energy_per_bit_j(config) * 1e12, 1) +
                       " pJ/b",
                   sim::Table::sci(point.ber)});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check: each rung buys BER with milliwatts. A controller watching\n"
              "the channel (SNR estimator, CIR length) can walk this ladder at runtime --\n"
              "\"adapting to channel conditions\", the closing promise of Section 3.\n");
  return 0;
}
