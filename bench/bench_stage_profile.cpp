// Stage-profile bench: where a link trial's time actually goes, per
// pipeline stage, for gen-1 and gen-2 across AWGN/CM1/CM3 -- the numbers
// behind docs/performance.md item 1 (gen-1 packet budget) and the
// overhead claim in docs/observability.md. Results land in
// bench/results/BENCH_stage_profile.json:
//
//   rows[]:      {gen, channel, trials, stages: [{stage, calls, total_ns,
//                 mean_ns, samples, samples_per_s}]}
//   overhead:    profile-on vs profile-off wall time of the gen-2 CM3
//                trial loop (identical Rng streams), as a percentage.
//
// Trials replay deterministic Rng forks of a fixed root, so the profiled
// packets are the same packets the hotpath bench times.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "io/json.h"
#include "obs/profile.h"
#include "sim/scenario.h"
#include "txrx/link.h"

namespace {

using namespace uwb;

struct ProfileRow {
  std::string gen;
  std::string channel;
  std::size_t trials = 0;
  obs::StageTable stages;
};

std::string channel_name(int cm) { return cm == 0 ? "AWGN" : "CM" + std::to_string(cm); }

/// Builds the requested link with per-generation default trial options at
/// 14 dB on channel \p cm (same operating point as bench_hotpath).
struct Workload {
  std::unique_ptr<txrx::Link> link;
  txrx::TrialOptions options;
};

Workload make_workload(const std::string& gen, int cm, uint64_t seed) {
  Workload w;
  if (gen == "gen1") {
    w.link = std::make_unique<txrx::Gen1Link>(sim::gen1_nominal(), seed);
    w.options = txrx::default_options(txrx::Generation::kGen1);
  } else {
    w.link = std::make_unique<txrx::Gen2Link>(sim::gen2_nominal(), seed);
  }
  w.options.cm = cm;
  w.options.ebn0_db = 14.0;
  return w;
}

/// Runs \p trials deterministic packets; wall seconds out, profiler
/// optionally active on this thread for the whole loop.
double run_trials(Workload& w, std::size_t trials, uint64_t seed,
                  obs::StageProfiler* profiler) {
  const obs::ScopedStageProfile scope(profiler);
  const Rng root(seed);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < trials; ++i) {
    Rng trial_rng = root.fork(i);
    (void)w.link->run_packet(w.options, trial_rng);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

ProfileRow measure(const std::string& gen, int cm, std::size_t trials, uint64_t seed) {
  Workload w = make_workload(gen, cm, seed);
  obs::StageProfiler profiler;
  (void)run_trials(w, trials, seed, &profiler);
  return ProfileRow{gen, channel_name(cm), trials, profiler.merged()};
}

io::JsonValue row_to_json(const ProfileRow& row) {
  io::JsonValue out = io::JsonValue::object();
  out.set("gen", io::JsonValue::string(row.gen));
  out.set("channel", io::JsonValue::string(row.channel));
  out.set("trials", io::JsonValue::number(static_cast<std::uint64_t>(row.trials)));
  io::JsonValue stages = io::JsonValue::array();
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    const obs::Stage stage = static_cast<obs::Stage>(i);
    const obs::StageStats& s = row.stages[stage];
    if (s.calls == 0) continue;
    const double rate =
        s.total_ns > 0
            ? static_cast<double>(s.samples) / (static_cast<double>(s.total_ns) / 1e9)
            : 0.0;
    io::JsonValue entry = io::JsonValue::object();
    entry.set("stage", io::JsonValue::string(obs::stage_name(stage)));
    entry.set("calls", io::JsonValue::number(s.calls));
    entry.set("total_ns", io::JsonValue::number(s.total_ns));
    entry.set("mean_ns", io::JsonValue::number(s.mean_ns()));
    entry.set("samples", io::JsonValue::number(s.samples));
    entry.set("samples_per_s", io::JsonValue::number(rate));
    stages.push_back(std::move(entry));
  }
  out.set("stages", std::move(stages));
  return out;
}

}  // namespace

int main() {
  const uint64_t seed = 0x9F17;
  bench::print_header("STAGE_PROFILE", "per-stage time attribution, gen-1 vs gen-2", seed);

  const std::size_t gen2_trials = bench::fast_mode() ? 3 : 12;
  const std::size_t gen1_trials = bench::fast_mode() ? 1 : 3;

  std::vector<ProfileRow> rows;
  for (const int cm : {0, 1, 3}) {
    rows.push_back(measure("gen2", cm, gen2_trials, seed + static_cast<uint64_t>(cm)));
    rows.push_back(
        measure("gen1", cm, gen1_trials, seed + 16 + static_cast<uint64_t>(cm)));
  }
  for (const ProfileRow& row : rows) {
    std::printf("%s %s (%zu trials):\n", row.gen.c_str(), row.channel.c_str(), row.trials);
    obs::print_stage_table(row.stages, stdout);
    std::printf("\n");
  }

  // Overhead of the profiler itself on the gen-2 CM3 hotpath: identical
  // trial streams with and without an active profiler. One warmup pass
  // first so FFT plans are hot.
  const std::size_t overhead_trials = bench::fast_mode() ? 4 : 48;
  const std::size_t overhead_reps = bench::fast_mode() ? 3 : 11;
  const uint64_t overhead_seed = seed + 99;
  Workload w = make_workload("gen2", 3, overhead_seed);
  (void)run_trials(w, overhead_trials, overhead_seed, nullptr);
  // Paired per-rep ratios, order swapped each rep, median across reps:
  // adjacent-in-time pairs cancel clock/cache drift, the order swap
  // cancels which-mode-runs-second bias, the median rejects outlier reps.
  std::vector<double> pcts;
  double off_s = 0.0;
  double on_s = 0.0;
  for (std::size_t rep = 0; rep < overhead_reps; ++rep) {
    obs::StageProfiler profiler;
    double off = 0.0;
    double on = 0.0;
    if (rep % 2 == 0) {
      off = run_trials(w, overhead_trials, overhead_seed, nullptr);
      on = run_trials(w, overhead_trials, overhead_seed, &profiler);
    } else {
      on = run_trials(w, overhead_trials, overhead_seed, &profiler);
      off = run_trials(w, overhead_trials, overhead_seed, nullptr);
    }
    pcts.push_back(off > 0.0 ? (on - off) / off * 100.0 : 0.0);
    off_s += off;
    on_s += on;
  }
  std::sort(pcts.begin(), pcts.end());
  const double overhead_pct = pcts[pcts.size() / 2];
  std::printf(
      "profiler overhead (gen-2 CM3, %zu trials, median of %zu paired reps): "
      "off %.3fs, on %.3fs total -> %+.2f%%\n",
      overhead_trials, overhead_reps, off_s, on_s, overhead_pct);

  io::JsonValue doc = io::JsonValue::object();
  doc.set("bench", io::JsonValue::string("stage_profile"));
  doc.set("fast_mode", io::JsonValue::boolean(bench::fast_mode()));
  io::JsonValue json_rows = io::JsonValue::array();
  for (const ProfileRow& row : rows) json_rows.push_back(row_to_json(row));
  doc.set("rows", std::move(json_rows));
  io::JsonValue overhead = io::JsonValue::object();
  overhead.set("workload", io::JsonValue::string("gen2 CM3 14 dB"));
  overhead.set("trials", io::JsonValue::number(static_cast<std::uint64_t>(overhead_trials)));
  overhead.set("profile_off_s", io::JsonValue::number(off_s));
  overhead.set("profile_on_s", io::JsonValue::number(on_s));
  overhead.set("overhead_pct", io::JsonValue::number(overhead_pct));
  doc.set("overhead", std::move(overhead));

  const std::string path = "bench/results/BENCH_stage_profile.json";
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::binary);
  out << io::dump_json_pretty(doc) << "\n";
  std::printf("\n(results: %s)\n", path.c_str());
  return 0;
}
