#pragma once
/// \file bench_util.h
/// \brief Shared plumbing for the experiment benches: Monte-Carlo budgets
///        (scaled down when UWB_BENCH_FAST is set), link-BER helpers, and
///        uniform headers so EXPERIMENTS.md can quote outputs verbatim.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/ber_simulator.h"
#include "sim/table.h"
#include "txrx/link.h"

namespace uwb::bench {

/// True when the user asked for a quick pass (UWB_BENCH_FAST=1).
inline bool fast_mode() {
  const char* env = std::getenv("UWB_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

/// Monte-Carlo stopping rule scaled by the mode through the one shared
/// clamped helper (sim::scale_stop): fast mode divides the budgets by
/// 4 / 8, and every budget stays >= 1, so callers passing small budgets
/// still get a working stopping rule rather than a degenerate
/// min_errors == 0 (stop immediately) or max_bits == 0 one.
inline sim::BerStop stop_rule(std::size_t min_errors = 40, std::size_t max_bits = 120000) {
  sim::BerStop stop;
  stop.min_errors = min_errors;
  stop.max_bits = max_bits;
  stop.max_trials = 100000;
  return fast_mode() ? sim::scale_stop(stop, 4, 8) : sim::scale_stop(stop, 1, 1);
}

/// Measures one BER point of any link (gen-1 or gen-2) on the link's own
/// RNG -- the sequential helper for benches not yet on the sweep engine.
inline sim::BerPoint link_ber(txrx::Link& link, const txrx::TrialOptions& options,
                              const sim::BerStop& stop) {
  return sim::measure_ber(
      [&]() {
        const txrx::TrialResult trial = link.run_packet(options);
        sim::TrialOutcome out;
        out.bits = trial.bits;
        out.errors = trial.errors;
        return out;
      },
      stop);
}

/// Mean of a recorded metric on a sweep point, or \p fallback when the
/// metric has no observations (e.g. sync time with zero detections).
inline double metric_mean(const sim::MetricSet& metrics, const std::string& name,
                          double fallback = 0.0) {
  const sim::MetricStats* stats = metrics.find(name);
  return stats == nullptr || stats->count == 0 ? fallback : stats->mean();
}

/// Worker count for engine sweeps: UWB_BENCH_WORKERS when set, else 0
/// (auto = hardware concurrency).
inline std::size_t worker_count() {
  const char* env = std::getenv("UWB_BENCH_WORKERS");
  if (env == nullptr || env[0] == '\0') return 0;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed <= 0 ? 0 : static_cast<std::size_t>(parsed);
}

/// Uniform experiment header: id, paper anchor, seed.
inline void print_header(const std::string& id, const std::string& claim, uint64_t seed) {
  std::printf("%s", sim::banner(id + " -- " + claim).c_str());
  std::printf("(seed %llu%s)\n\n", static_cast<unsigned long long>(seed),
              fast_mode() ? ", FAST mode" : "");
}

}  // namespace uwb::bench
