#pragma once
/// \file bench_util.h
/// \brief Shared plumbing for the experiment benches: Monte-Carlo budgets
///        (scaled down when UWB_BENCH_FAST is set), link-BER helpers, and
///        uniform headers so EXPERIMENTS.md can quote outputs verbatim.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/ber_simulator.h"
#include "sim/table.h"
#include "txrx/link.h"

namespace uwb::bench {

/// True when the user asked for a quick pass (UWB_BENCH_FAST=1).
inline bool fast_mode() {
  const char* env = std::getenv("UWB_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

/// Monte-Carlo stopping rule scaled by the mode. Fast-mode scaling is
/// clamped to at least one error / one bit, so callers passing small
/// budgets still get a working stopping rule rather than a degenerate
/// min_errors == 0 (stop immediately) or max_bits == 0 one.
inline sim::BerStop stop_rule(std::size_t min_errors = 40, std::size_t max_bits = 120000) {
  sim::BerStop stop;
  if (fast_mode()) {
    stop.min_errors = std::max<std::size_t>(1, min_errors / 4);
    stop.max_bits = std::max<std::size_t>(1, max_bits / 8);
  } else {
    stop.min_errors = std::max<std::size_t>(1, min_errors);
    stop.max_bits = std::max<std::size_t>(1, max_bits);
  }
  stop.max_trials = 100000;
  return stop;
}

/// Measures one BER point of any link (gen-1 or gen-2) on the link's own
/// RNG -- the sequential helper for benches not yet on the sweep engine.
inline sim::BerPoint link_ber(txrx::Link& link, const txrx::TrialOptions& options,
                              const sim::BerStop& stop) {
  return sim::measure_ber(
      [&]() {
        const txrx::TrialResult trial = link.run_packet(options);
        return sim::TrialOutcome{trial.bits, trial.errors};
      },
      stop);
}

/// Worker count for engine sweeps: UWB_BENCH_WORKERS when set, else 0
/// (auto = hardware concurrency).
inline std::size_t worker_count() {
  const char* env = std::getenv("UWB_BENCH_WORKERS");
  if (env == nullptr || env[0] == '\0') return 0;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed <= 0 ? 0 : static_cast<std::size_t>(parsed);
}

/// Uniform experiment header: id, paper anchor, seed.
inline void print_header(const std::string& id, const std::string& claim, uint64_t seed) {
  std::printf("%s", sim::banner(id + " -- " + claim).c_str());
  std::printf("(seed %llu%s)\n\n", static_cast<unsigned long long>(seed),
              fast_mode() ? ", FAST mode" : "");
}

}  // namespace uwb::bench
