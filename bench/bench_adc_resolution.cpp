// E5 (Section 1, ref [1]): "A 1-bit analog-to-digital converter (ADC) in a
// noise limited regime, and a 4-bit ADC in a narrowband interferer regime
// are sufficient." BER vs SAR resolution with and without a strong CW
// interferer.

#include <cstdio>

#include "bench_util.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE5;
  bench::print_header("E5 / Section 1",
                      "1-bit ADC suffices noise-limited; 4-bit with an interferer", seed);

  const double ebn0 = 10.0;
  sim::Table table({"ADC bits", "BER noise-limited", "BER intf, no notch",
                    "BER intf + notch", "penalty (notched)"});

  for (int bits : {1, 2, 3, 4, 5, 6}) {
    txrx::Gen2Config config = sim::gen2_fast();
    config.sar.bits = bits;
    config.use_mlse = false;  // isolate the converter effect

    txrx::TrialOptions clean;
    clean.payload_bits = 300;
    clean.ebn0_db = ebn0;
    clean.run_spectral_monitor = false;

    txrx::TrialOptions jammed = clean;
    jammed.interferer = true;
    jammed.interferer_sir_db = -15.0;
    jammed.interferer_freq_hz = 140e6;
    jammed.run_spectral_monitor = true;

    txrx::TrialOptions defended = jammed;
    defended.auto_notch = true;  // the paper's mitigation path: monitor + notch

    const auto stop = bench::stop_rule(40, 80000);
    txrx::Gen2Link link_a(config, seed + static_cast<uint64_t>(bits));
    txrx::Gen2Link link_b(config, seed + static_cast<uint64_t>(bits));
    txrx::Gen2Link link_c(config, seed + static_cast<uint64_t>(bits));
    const sim::BerPoint p_clean = bench::link_ber(link_a, clean, stop);
    const sim::BerPoint p_raw = bench::link_ber(link_b, jammed, stop);
    const sim::BerPoint p_def = bench::link_ber(link_c, defended, stop);

    std::string penalty = "--";
    if (p_clean.ber > 0.0 && p_def.ber > 0.0) {
      penalty = sim::Table::num(p_def.ber / p_clean.ber, 1) + "x";
    }
    table.add_row({sim::Table::integer(bits), sim::Table::sci(p_clean.ber),
                   sim::Table::sci(p_raw.ber), sim::Table::sci(p_def.ber), penalty});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check (ref [1]'s result): in the noise-limited column the BER is\n"
              "already near its floor at 1 bit (the classic ~2 dB limiter loss); under a\n"
              "strong narrowband interferer low-resolution converters clip the composite\n"
              "signal and collapse, recovering once the resolution reaches ~4 bits --\n"
              "which is why gen-2 carries 5-bit SARs plus the notch path.\n");
  return 0;
}
