// E5 (Section 1, ref [1]): "A 1-bit analog-to-digital converter (ADC) in a
// noise limited regime, and a 4-bit ADC in a narrowband interferer regime
// are sufficient." BER vs SAR resolution with and without a strong CW
// interferer.
//
// Runs on the parallel sweep engine via the "gen2_adc_resolution" registry
// scenario (adc_bits x regime grid); raw points land in
// bench/results/gen2_adc_resolution.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE5;
  bench::print_header("E5 / Section 1",
                      "1-bit ADC suffices noise-limited; 4-bit with an interferer", seed);

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(40, 80000);

  engine::JsonSink json(engine::default_result_path("gen2_adc_resolution", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::SweepResult result = sweep.run_named("gen2_adc_resolution", {&json});

  sim::Table table({"ADC bits", "BER noise-limited", "BER intf, no notch",
                    "BER intf + notch", "penalty (notched)"});
  for (int bits = 1; bits <= 6; ++bits) {
    const std::string bits_tag = std::to_string(bits);
    const engine::PointRecord* clean = result.find({{"adc_bits", bits_tag}, {"regime", "clean"}});
    const engine::PointRecord* raw =
        result.find({{"adc_bits", bits_tag}, {"regime", "interferer"}});
    const engine::PointRecord* notched =
        result.find({{"adc_bits", bits_tag}, {"regime", "notched"}});
    if (clean == nullptr || raw == nullptr || notched == nullptr) {
      // The lookup keys and the registry scenario drifted apart: a silent
      // skip would print an empty table under a green exit code.
      std::fprintf(stderr, "bench_adc_resolution: no point for adc_bits=%s in the sweep\n",
                   bits_tag.c_str());
      return 1;
    }

    std::string penalty = "--";
    if (clean->ber.ber > 0.0 && notched->ber.ber > 0.0) {
      penalty = sim::Table::num(notched->ber.ber / clean->ber.ber, 1) + "x";
    }
    table.add_row({sim::Table::integer(bits), sim::Table::sci(clean->ber.ber),
                   sim::Table::sci(raw->ber.ber), sim::Table::sci(notched->ber.ber), penalty});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());
  std::printf("\nShape check (ref [1]'s result): in the noise-limited column the BER is\n"
              "already near its floor at 1 bit (the classic ~2 dB limiter loss); under a\n"
              "strong narrowband interferer low-resolution converters clip the composite\n"
              "signal and collapse, recovering once the resolution reaches ~4 bits --\n"
              "which is why gen-2 carries 5-bit SARs plus the notch path.\n");
  return 0;
}
