// E8 (Sections 1 and 3): "The inter-symbol interference (ISI) due to
// multipath can be addressed with a Viterbi demodulator." Matched filter vs
// RAKE vs RAKE+MLSE across channel severities, plus the MLSE memory
// (trellis states) knob.

#include <cstdio>

#include "bench_util.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE8;
  bench::print_header("E8 / Sections 1+3", "Viterbi demodulator (MLSE) vs ISI", seed);

  const double ebn0 = 14.0;
  sim::Table table({"channel", "MF only", "RAKE(8)", "RAKE+MLSE(8 st)", "MLSE gain"});
  for (int cm : {1, 2, 3, 4}) {
    txrx::Gen2Config mf = sim::gen2_fast();
    mf.use_rake = false;
    mf.use_mlse = false;
    txrx::Gen2Config rake = sim::gen2_fast();
    rake.use_mlse = false;
    txrx::Gen2Config full = sim::gen2_fast();

    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = cm;
    options.ebn0_db = ebn0;

    const auto stop = bench::stop_rule(40, 60000);
    txrx::Gen2Link l1(mf, seed + static_cast<uint64_t>(cm));
    txrx::Gen2Link l2(rake, seed + static_cast<uint64_t>(cm));
    txrx::Gen2Link l3(full, seed + static_cast<uint64_t>(cm));
    const auto p1 = bench::link_ber(l1, options, stop);
    const auto p2 = bench::link_ber(l2, options, stop);
    const auto p3 = bench::link_ber(l3, options, stop);

    std::string gain = "--";
    if (p3.ber > 0.0 && p2.ber > 0.0) gain = sim::Table::num(p2.ber / p3.ber, 1) + "x";
    table.add_row({"CM" + std::to_string(cm), sim::Table::sci(p1.ber), sim::Table::sci(p2.ber),
                   sim::Table::sci(p3.ber), gain});
  }
  std::printf("%s", table.to_string().c_str());

  // --- MLSE memory sweep (the "States" input of Fig. 3) --------------------
  std::printf("\nMLSE trellis memory on CM4 (Eb/N0 = %.0f dB):\n\n", ebn0);
  sim::Table mem_table({"memory", "states", "BER"});
  for (int memory : {1, 2, 3, 5}) {
    txrx::Gen2Config config = sim::gen2_fast();
    config.mlse.memory = memory;

    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = 4;
    options.ebn0_db = ebn0;

    txrx::Gen2Link link(config, seed);
    const auto stop = bench::stop_rule(40, 60000);
    const auto point = bench::link_ber(link, options, stop);
    mem_table.add_row({sim::Table::integer(memory), sim::Table::integer(1 << memory),
                       sim::Table::sci(point.ber)});
  }
  std::printf("%s", mem_table.to_string().c_str());
  std::printf("\nShape check: RAKE fixes energy capture but not ISI; the Viterbi\n"
              "demodulator buys an extra factor on the dispersive channels, growing\n"
              "with trellis memory until the channel's ISI span is covered.\n");
  return 0;
}
