// E8 (Sections 1 and 3): "The inter-symbol interference (ISI) due to
// multipath can be addressed with a Viterbi demodulator." Matched filter vs
// RAKE vs RAKE+MLSE across channel severities, plus the MLSE memory
// (trellis states) knob.
//
// Runs on the parallel sweep engine via the "gen2_mlse_isi" (channel x
// backend grid) and "gen2_mlse_memory" (trellis-memory sweep on CM4)
// registry scenarios; raw points land in bench/results/<scenario>.json.

#include <cstdio>

#include "bench_util.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE8;
  bench::print_header("E8 / Sections 1+3", "Viterbi demodulator (MLSE) vs ISI", seed);

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(40, 60000);

  engine::JsonSink isi_json(engine::default_result_path("gen2_mlse_isi", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::SweepResult isi = sweep.run_named("gen2_mlse_isi", {&isi_json});

  sim::Table table({"channel", "MF only", "RAKE(8)", "RAKE+MLSE(8 st)", "MLSE gain"});
  for (const char* channel : {"CM1", "CM2", "CM3", "CM4"}) {
    const engine::PointRecord* mf = isi.find({{"channel", channel}, {"backend", "mf_only"}});
    const engine::PointRecord* rake = isi.find({{"channel", channel}, {"backend", "rake"}});
    const engine::PointRecord* full =
        isi.find({{"channel", channel}, {"backend", "rake_mlse"}});
    if (mf == nullptr || rake == nullptr || full == nullptr) {
      std::fprintf(stderr, "bench_mlse_isi: missing backend point on %s\n", channel);
      return 1;
    }
    std::string gain = "--";
    if (full->ber.ber > 0.0 && rake->ber.ber > 0.0) {
      gain = sim::Table::num(rake->ber.ber / full->ber.ber, 1) + "x";
    }
    table.add_row({channel, sim::Table::sci(mf->ber.ber), sim::Table::sci(rake->ber.ber),
                   sim::Table::sci(full->ber.ber), gain});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(results: %s)\n", isi_json.path().c_str());

  // --- MLSE memory sweep (the "States" input of Fig. 3) --------------------
  std::printf("\nMLSE trellis memory on CM4 (Eb/N0 = 14 dB):\n\n");
  engine::JsonSink mem_json(engine::default_result_path("gen2_mlse_memory", "json"));
  const engine::SweepResult mem = sweep.run_named("gen2_mlse_memory", {&mem_json});

  sim::Table mem_table({"memory", "states", "BER"});
  for (const char* memory : {"1", "2", "3", "5"}) {
    const engine::PointRecord* point = mem.find({{"memory", memory}});
    if (point == nullptr) {
      std::fprintf(stderr, "bench_mlse_isi: no point for memory=%s\n", memory);
      return 1;
    }
    mem_table.add_row({memory, sim::Table::integer(1LL << std::stoi(memory)),
                       sim::Table::sci(point->ber.ber)});
  }
  std::printf("%s", mem_table.to_string().c_str());
  std::printf("\n(results: %s)\n", mem_json.path().c_str());
  std::printf("\nShape check: RAKE fixes energy capture but not ISI; the Viterbi\n"
              "demodulator buys an extra factor on the dispersive channels, growing\n"
              "with trellis memory until the channel's ISI span is covered.\n");
  return 0;
}
