// E14: back-end throughput microbenchmarks (google-benchmark). The paper's
// back end must keep up with a >= 500 MSps converter stream; these numbers
// show the per-block software cost of the same algorithms.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dsp/correlator.h"
#include "dsp/fast_convolve.h"
#include "dsp/fft.h"
#include "dsp/filter_design.h"
#include "dsp/fir_filter.h"
#include "equalizer/mlse.h"
#include "equalizer/rake.h"
#include "fec/convolutional.h"
#include "fec/viterbi_decoder.h"
#include "phy/scrambler.h"

namespace {

using namespace uwb;

void BM_Fft1024(benchmark::State& state) {
  Rng rng(1);
  CplxVec x(1024);
  for (auto& v : x) v = rng.cgaussian();
  for (auto _ : state) {
    CplxVec copy = x;
    dsp::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Fft1024);

void BM_FirFilter64Tap(benchmark::State& state) {
  Rng rng(2);
  const RealVec taps = dsp::design_lowpass(200e6, 2e9, 64);
  CplxVec x(4096);
  for (auto& v : x) v = rng.cgaussian();
  for (auto _ : state) {
    auto y = dsp::convolve_same(x, taps);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_FirFilter64Tap);

void BM_CorrelatorBank127(benchmark::State& state) {
  Rng rng(3);
  const auto chips = phy::to_chips(phy::msequence(7));
  CplxVec tmpl;
  for (double c : chips) tmpl.emplace_back(c, 0.0);
  CplxVec x(4096);
  for (auto& v : x) v = rng.cgaussian();
  for (auto _ : state) {
    auto nc = dsp::normalized_correlation(x, tmpl);
    benchmark::DoNotOptimize(nc.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size() - tmpl.size() + 1));
}
BENCHMARK(BM_CorrelatorBank127);

void BM_ViterbiDecodeK7(benchmark::State& state) {
  Rng rng(4);
  const fec::ConvCode code = fec::k7_rate_half();
  const fec::ConvEncoder enc(code);
  const fec::ViterbiDecoder dec(code);
  const BitVec info = rng.bits(512);
  const BitVec coded = enc.encode(info);
  for (auto _ : state) {
    auto out = dec.decode_hard(coded);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_ViterbiDecodeK7);

void BM_MlseDemod16State(benchmark::State& state) {
  Rng rng(5);
  const std::vector<cplx> g = {cplx{1.0, 0.0}, cplx{0.4, 0.1}, cplx{0.2, -0.1},
                               cplx{0.1, 0.0}, cplx{0.05, 0.0}};
  const equalizer::MlseDemodulator mlse(equalizer::MlseConfig{4}, g);
  CplxVec obs(1024);
  for (auto& v : obs) v = rng.cgaussian();
  for (auto _ : state) {
    auto bits = mlse.demodulate(obs);
    benchmark::DoNotOptimize(bits.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_MlseDemod16State);

void BM_RakeCombine8Finger(benchmark::State& state) {
  Rng rng(6);
  std::vector<channel::CirTap> taps;
  for (int k = 0; k < 8; ++k) {
    taps.push_back({k * 2e-9, rng.cgaussian()});
  }
  const channel::Cir cir(taps);
  const equalizer::RakeReceiver rake(equalizer::RakeConfig{}, cir, 1e9);
  CplxVec y(16384);
  for (auto& v : y) v = rng.cgaussian();
  const CplxWaveform w(y, 1e9);
  const equalizer::SymbolTiming timing{0, 10, 1600};
  for (auto _ : state) {
    auto soft = rake.demodulate(w, timing);
    benchmark::DoNotOptimize(soft.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1600);
}
BENCHMARK(BM_RakeCombine8Finger);

// ---- Convolution dispatch crossover fixtures --------------------------------
// These sweep the kernel length at a fixed signal length for each sample-type
// combination; the per-type kernel thresholds in dsp/fast_convolve.h are set
// where the Fft variant overtakes the Direct one on these curves (see
// docs/performance.md for the measured numbers).

void BM_ConvolveRealDirect(benchmark::State& state) {
  Rng rng(20);
  const auto h_len = static_cast<std::size_t>(state.range(0));
  RealVec x(16384), h(h_len);
  for (auto& v : x) v = rng.gaussian();
  for (auto& v : h) v = rng.gaussian();
  const dsp::FastConvolveGuard guard(false);
  for (auto _ : state) {
    auto y = dsp::convolve(x, h);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConvolveRealDirect)->Arg(32)->Arg(48)->Arg(64)->Arg(96)->Arg(128)->Arg(256)->Arg(1024);

void BM_ConvolveRealFft(benchmark::State& state) {
  Rng rng(20);
  const auto h_len = static_cast<std::size_t>(state.range(0));
  RealVec x(16384), h(h_len);
  for (auto& v : x) v = rng.gaussian();
  for (auto& v : h) v = rng.gaussian();
  dsp::FftWorkspace ws;
  for (auto _ : state) {
    RealVec y;  // fresh result like the production dispatch; ws stays warm
    dsp::ols_convolve(x, h, y, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConvolveRealFft)->Arg(32)->Arg(48)->Arg(64)->Arg(96)->Arg(128)->Arg(256)->Arg(1024);

void BM_ConvolveCplxRealDirect(benchmark::State& state) {
  Rng rng(21);
  const auto h_len = static_cast<std::size_t>(state.range(0));
  CplxVec x(16384);
  RealVec h(h_len);
  for (auto& v : x) v = rng.cgaussian();
  for (auto& v : h) v = rng.gaussian();
  const dsp::FastConvolveGuard guard(false);
  for (auto _ : state) {
    auto y = dsp::convolve(x, h);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConvolveCplxRealDirect)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(1024);

void BM_ConvolveCplxRealFft(benchmark::State& state) {
  Rng rng(21);
  const auto h_len = static_cast<std::size_t>(state.range(0));
  CplxVec x(16384);
  RealVec h(h_len);
  for (auto& v : x) v = rng.cgaussian();
  for (auto& v : h) v = rng.gaussian();
  dsp::FftWorkspace ws;
  for (auto _ : state) {
    CplxVec y;  // fresh result like the production dispatch; ws stays warm
    dsp::ols_convolve(x, h, y, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size()));
}
BENCHMARK(BM_ConvolveCplxRealFft)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(1024);

void BM_CorrelateCplxDirect(benchmark::State& state) {
  Rng rng(22);
  const auto m = static_cast<std::size_t>(state.range(0));
  CplxVec x(16384), tmpl(m);
  for (auto& v : x) v = rng.cgaussian();
  for (auto& v : tmpl) v = rng.cgaussian();
  const dsp::FastConvolveGuard guard(false);
  for (auto _ : state) {
    auto y = dsp::correlate(x, tmpl);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size() - m + 1));
}
BENCHMARK(BM_CorrelateCplxDirect)->Arg(16)->Arg(32)->Arg(64)->Arg(512)->Arg(4096);

void BM_CorrelateCplxFft(benchmark::State& state) {
  Rng rng(22);
  const auto m = static_cast<std::size_t>(state.range(0));
  CplxVec x(16384), tmpl(m);
  for (auto& v : x) v = rng.cgaussian();
  for (auto& v : tmpl) v = rng.cgaussian();
  dsp::FftWorkspace ws;
  for (auto _ : state) {
    CplxVec y;  // fresh result like the production dispatch; ws stays warm
    dsp::ols_correlate(x, tmpl, y, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(x.size() - m + 1));
}
BENCHMARK(BM_CorrelateCplxFft)->Arg(16)->Arg(32)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
