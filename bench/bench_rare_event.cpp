// Rare-event BER: noise-tilt importance sampling vs plain Monte-Carlo on
// the gen2_cm_grid_deep scenario. Every point is run to the same relative
// CI-width target; the figure of merit is packets-to-target.
//
// The validation point (AWGN, 6 dB) is shallow enough that plain MC
// reaches the target trivially, so the two estimates must agree within
// CIs there -- and they measure the *link's* BER, which sits a factor
// above the BPSK matched-filter closed form (the gen-2 receiver carries
// ~0.5 dB implementation loss from channel estimation on a finite
// preamble; the closed form is printed as the bound, not as the truth).
// Shallow points are also plain MC's home turf: it scores every payload
// bit per packet while the IS estimator scores one, so expect speedup
// << 1 there. AWGN 12 dB is the rare-event showcase: plain MC gets the
// exact same packet budget the IS run needed, sees ~zero errors, and its
// packets-to-target is projected from the IS estimate via the normal
// error budget z^2/r^2 over p*bits_per_packet (standard rare-event
// accounting) -- with the IS estimate inflated by the plain/IS BER ratio
// measured at the validation point, so the projection never assumes the
// link is exactly as good as the mechanism the tilt samples best. CM1 16 dB probes the regime boundary: ensemble-fading
// spread, not extreme noise, drives those errors, so the noise tilt
// boosts nothing -- the balance-heuristic weights keep the estimate
// honest (fading errors arrive with O(1) weights) but high-variance, and
// the table reports speedup < 1 as a finding, not a failure (see
// docs/rare_event.md). A side that hits its packet cap short of the
// target gets its packets-to-target projected as
// trials * (achieved/target)^2 and is flagged in the JSON. Numbers land
// in bench/results/BENCH_rare_event.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "engine/scenario_registry.h"
#include "engine/sweep_engine.h"
#include "stats/binomial_ci.h"

namespace {

using namespace uwb;

constexpr std::size_t kPayloadBits = 300;  // gen2_cm_grid_deep's payload

struct PointReport {
  std::string channel;
  double ebn0_db = 0.0;
  double analytic_ber = -1.0;  ///< BPSK closed form; AWGN points only
  sim::BerPoint is;
  sim::BerPoint plain;
  bool is_reached_target = false;
  bool plain_reached_target = false;
  double is_trials_to_target = 0.0;     ///< measured when reached, else projected
  double plain_trials_to_target = 0.0;  ///< measured when reached, else projected
  double speedup = 0.0;
};

/// Achieved 95% relative CI half-width, or -1 with no errors seen.
double rel_width(const sim::BerPoint& point) {
  return point.ber > 0.0 ? 0.5 * (point.ci_hi - point.ci_lo) / point.ber : -1.0;
}

/// Packets-to-target for a run that stopped at \p point: the measured
/// trial count when the target was met, else the 1/sqrt(n) projection
/// trials * (achieved/target)^2 (and the full normal error budget when
/// the run saw no errors at all).
double trials_to_target(const sim::BerPoint& point, double target, bool reached,
                        double fallback_ber) {
  if (reached) return static_cast<double>(point.trials);
  const double w = rel_width(point);
  if (w < 0.0) {
    // Zero errors: project from the other estimator's BER instead.
    const double z = stats::normal_quantile(0.975);
    const double errors_needed = (z * z) / (target * target);
    const double bits_per_trial =
        static_cast<double>(point.bits) / static_cast<double>(point.trials);
    return errors_needed / (fallback_ber * bits_per_trial);
  }
  return static_cast<double>(point.trials) * (w / target) * (w / target);
}

/// One point of gen2_cm_grid_deep under the given stopping rule.
sim::BerPoint run_point(const std::string& channel, const std::string& ebn0,
                        const std::string& sampling, const sim::BerStop& stop,
                        uint64_t seed) {
  engine::ScenarioSpec scenario =
      engine::ScenarioRegistry::global().make("gen2_cm_grid_deep");
  engine::restrict_scenario(scenario, "channel", channel);
  engine::restrict_scenario(scenario, "ebn0_db", ebn0);
  engine::restrict_scenario(scenario, "sampling", sampling);

  engine::SweepConfig config;
  config.seed = seed;
  config.workers = bench::worker_count();
  config.stop = stop;
  engine::SweepEngine engine(config);
  const engine::SweepResult result = engine.run(scenario, {});
  detail::require(result.records.size() == 1, "bench_rare_event: expected one point");
  return result.records.front().ber;
}

void write_json(const std::string& path, double target, double calibration,
                const std::vector<PointReport>& points) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "{\n  \"target_rel_ci_width\": " << target
      << ",\n  \"payload_bits\": " << kPayloadBits
      << ",\n  \"plain_over_is_calibration\": " << calibration << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointReport& r = points[i];
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"channel\": \"%s\", \"ebn0_db\": %g,%s\n"
        "     \"is\": {\"trials\": %zu, \"ber\": %.6g, \"ci_lo\": %.6g, "
        "\"ci_hi\": %.6g, \"ess\": %.4g, \"reached_target\": %s, "
        "\"trials_to_target\": %.6g},\n"
        "     \"plain\": {\"trials\": %zu, \"errors\": %zu, \"ber\": %.6g, "
        "\"ci_hi\": %.6g, \"reached_target\": %s, \"trials_to_target\": %.6g},\n"
        "     \"speedup\": %.4g}%s\n",
        r.channel.c_str(), r.ebn0_db,
        r.analytic_ber >= 0.0
            ? (" \"analytic_bpsk_ber\": " + std::to_string(r.analytic_ber) + ",").c_str()
            : "",
        r.is.trials, r.is.ber, r.is.ci_lo, r.is.ci_hi, r.is.ess,
        r.is_reached_target ? "true" : "false", r.is_trials_to_target, r.plain.trials,
        r.plain.errors, r.plain.ber, r.plain.ci_hi,
        r.plain_reached_target ? "true" : "false", r.plain_trials_to_target, r.speedup,
        i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const uint64_t seed = 0xBE0;
  bench::print_header("RARE EVENT", "noise-tilt IS vs plain MC, packets to CI target", seed);

  const double target = bench::fast_mode() ? 0.5 : 0.3;
  const std::size_t is_cap = bench::fast_mode() ? 600 : 4000;
  const std::size_t plain_cap = bench::fast_mode() ? 1500 : 30000;

  sim::BerStop ci_stop;  // CI-width stopping rule, trial-capped
  ci_stop.target_rel_ci_width = target;
  ci_stop.max_bits = std::numeric_limits<std::size_t>::max();

  std::vector<PointReport> points;
  // Ratio of plain to IS BER at the validation point: deep-point plain
  // projections inflate the IS estimate by this factor, so the projected
  // plain cost does not assume the link is exactly as good as the part of
  // it the tilt measures best. Starts at 1 (no correction) until the
  // validation point has measured it.
  double calibration = 1.0;
  struct Spec {
    const char* channel;
    const char* ebn0;
    bool plain_to_target;  ///< shallow point: actually run plain MC to the target
  };
  for (const Spec& spec : {Spec{"AWGN", "6", true}, Spec{"AWGN", "12", false},
                           Spec{"CM1", "16", true}}) {
    PointReport r;
    r.channel = spec.channel;
    r.ebn0_db = std::strtod(spec.ebn0, nullptr);
    if (r.channel == "AWGN") {
      r.analytic_ber = 0.5 * std::erfc(std::sqrt(std::pow(10.0, r.ebn0_db / 10.0)));
    }

    sim::BerStop is_stop = ci_stop;
    is_stop.max_trials = is_cap;
    r.is = run_point(spec.channel, spec.ebn0, "is", is_stop, seed);

    sim::BerStop plain_stop = ci_stop;
    if (spec.plain_to_target) {
      plain_stop.max_trials = plain_cap;
    } else {
      // Same packet budget the IS run consumed: the "what would plain MC
      // have seen" control, not a race to the target.
      plain_stop.target_rel_ci_width = 0.0;
      plain_stop.min_errors = std::numeric_limits<std::size_t>::max();
      plain_stop.max_trials = r.is.trials;
    }
    r.plain = run_point(spec.channel, spec.ebn0, "plain", plain_stop, seed);

    // "Reached" means the CI rule fired before the packet cap. The cap
    // comparison (not the achieved width) is the authority: the engine's
    // running stop probe and the reported interval use different interval
    // constructions, so re-deriving the decision from the final CI would
    // occasionally disagree with what actually stopped the run.
    const double is_width = rel_width(r.is);
    r.is_reached_target =
        r.is.trials < is_cap || (is_width >= 0.0 && is_width <= target);
    const double plain_width = rel_width(r.plain);
    r.plain_reached_target =
        spec.plain_to_target &&
        (r.plain.trials < plain_cap || (plain_width >= 0.0 && plain_width <= target));
    r.is_trials_to_target = trials_to_target(r.is, target, r.is_reached_target, r.plain.ber);
    r.plain_trials_to_target = trials_to_target(r.plain, target, r.plain_reached_target,
                                                r.is.ber * calibration);
    r.speedup = r.plain_trials_to_target / r.is_trials_to_target;
    if (spec.plain_to_target && r.plain.ber > 0.0 && r.is.ber > 0.0 &&
        calibration == 1.0) {
      calibration = std::max(1.0, r.plain.ber / r.is.ber);
    }
    points.push_back(r);
  }

  sim::Table table({"channel", "Eb/N0", "IS BER", "IS 95% CI", "plain errors",
                    "IS pkts to target", "plain pkts to target", "speedup"});
  for (const PointReport& r : points) {
    table.add_row({r.channel, sim::Table::db(r.ebn0_db, 0), sim::Table::sci(r.is.ber),
                   "[" + sim::Table::sci(r.is.ci_lo) + ", " + sim::Table::sci(r.is.ci_hi) + "]",
                   sim::Table::integer(static_cast<long long>(r.plain.errors)),
                   (r.is_reached_target ? "" : "~") + sim::Table::sci(r.is_trials_to_target),
                   (r.plain_reached_target ? "" : "~") +
                       sim::Table::sci(r.plain_trials_to_target),
                   sim::Table::num(r.speedup, 1) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  if (points.front().analytic_ber >= 0.0) {
    std::printf("\nBPSK matched-filter bound at AWGN %g dB: %.3g (the link measures\n"
                "above it: ~0.5 dB implementation loss from preamble channel estimation).\n",
                points.front().ebn0_db, points.front().analytic_ber);
  }

  const std::string path = "bench/results/BENCH_rare_event.json";
  write_json(path, target, calibration, points);
  std::printf("\n(results: %s)\n", path.c_str());
  std::printf("\nShape check: both estimators agree within CIs at the shallow point\n"
              "(where plain MC is rightly faster); AWGN 12 dB shows the rare-event win\n"
              "(plain MC ~zero errors in the IS budget, projected speedup >= 10x);\n"
              "CM1 16 dB shows the regime boundary where ensemble-fading spread, not\n"
              "extreme noise, drives the errors and the tilt loses (speedup < 1).\n");
  return 0;
}
