// E6 (Section 3): "the channel impulse response is estimated with a
// precision of up to four bits during the packet preamble." BER vs the
// per-tap quantization of the channel estimate feeding RAKE and MLSE.
//
// Runs on the parallel sweep engine via the "gen2_chanest_precision"
// registry scenario; raw points land in
// bench/results/gen2_chanest_precision.json.

#include <cstdio>
#include <string_view>

#include "bench_util.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE6;
  bench::print_header("E6 / Section 3", "channel-estimate tap precision (paper: 4 bits)",
                      seed);

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(40, 80000);

  engine::JsonSink json(engine::default_result_path("gen2_chanest_precision", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::SweepResult result = sweep.run_named("gen2_chanest_precision", {&json});

  const engine::PointRecord* reference = result.find({{"tap_bits", "float"}});
  if (reference == nullptr) {
    std::fprintf(stderr, "bench_chanest_precision: no float-reference point\n");
    return 1;
  }
  const double float_ber = reference->ber.ber;

  sim::Table table({"tap bits", "BER (CM2, RAKE+MLSE)", "vs float"});
  for (const char* bits : {"float", "1", "2", "3", "4", "6"}) {
    const engine::PointRecord* point = result.find({{"tap_bits", bits}});
    if (point == nullptr) {
      std::fprintf(stderr, "bench_chanest_precision: no point for tap_bits=%s\n",
                   bits);
      return 1;
    }
    std::string ratio = "reference";
    if (std::string_view(bits) != "float" && float_ber > 0.0) {
      ratio = sim::Table::num(point->ber.ber / float_ber, 2) + "x";
    }
    table.add_row({bits, sim::Table::sci(point->ber.ber), ratio});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());
  std::printf("\nShape check: 1-2 bit taps misweight the RAKE fingers and lose real BER;\n"
              "by 4 bits the curve sits on the float reference -- the paper's choice of\n"
              "\"up to four bits\" is exactly where the returns diminish.\n");
  return 0;
}
