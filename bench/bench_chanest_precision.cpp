// E6 (Section 3): "the channel impulse response is estimated with a
// precision of up to four bits during the packet preamble." BER vs the
// per-tap quantization of the channel estimate feeding RAKE and MLSE.

#include <cstdio>

#include "bench_util.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE6;
  bench::print_header("E6 / Section 3", "channel-estimate tap precision (paper: 4 bits)",
                      seed);

  const double ebn0 = 13.0;
  sim::Table table({"tap bits", "BER (CM2, RAKE+MLSE)", "vs float"});

  double float_ber = 0.0;
  // Float reference first (quantization_bits = 0).
  for (int bits : {0, 1, 2, 3, 4, 6}) {
    txrx::Gen2Config config = sim::gen2_fast();
    config.chanest.quantization_bits = bits;

    txrx::TrialOptions options;
    options.payload_bits = 300;
    options.cm = 2;
    options.ebn0_db = ebn0;

    const auto stop = bench::stop_rule(40, 80000);
    txrx::Gen2Link link(config, seed);  // same seed: same channels per config
    const sim::BerPoint point = bench::link_ber(link, options, stop);
    if (bits == 0) float_ber = point.ber;

    std::string ratio = "reference";
    if (bits != 0 && float_ber > 0.0) {
      ratio = sim::Table::num(point.ber / float_ber, 2) + "x";
    }
    table.add_row({bits == 0 ? "float" : sim::Table::integer(bits),
                   sim::Table::sci(point.ber), ratio});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check: 1-2 bit taps misweight the RAKE fingers and lose real BER;\n"
              "by 4 bits the curve sits on the float reference -- the paper's choice of\n"
              "\"up to four bits\" is exactly where the returns diminish.\n");
  return 0;
}
