// E2 (Fig. 1 / Section 2): "Through further parallelization, packet
// synchronization is obtained in less than 70 us." Sweeps the correlator-
// bank parallelism and reports modeled sync time plus Monte-Carlo
// detection statistics of the two-stage acquisition.
//
// Runs on the parallel sweep engine via the "gen1_sync" registry scenario;
// raw points (with the acquired / timing_correct / sync_time_s metric
// reductions) land in bench/results/gen1_sync.json.

#include <cstdio>

#include "bench_util.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE2;
  bench::print_header("E2 / Fig. 1", "gen-1 packet sync < 70 us via parallelization", seed);

  const std::size_t trials = bench::fast_mode() ? 6 : 20;
  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop.min_errors = trials + 1;  // fixed attempt budget per point
  sweep_config.stop.max_bits = trials;
  sweep_config.stop.max_trials = trials;

  engine::JsonSink json(engine::default_result_path("gen1_sync", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::SweepResult result = sweep.run_named("gen1_sync", {&json});

  const txrx::Gen1Config config = sim::gen1_nominal();
  sim::Table table({"P1 (stage-1)", "P2 (stage-2)", "sync time", "< 70 us", "P(detect)",
                    "P(timing ok)"});
  for (const char* p1 : {"8", "32", "128", "648"}) {
    const engine::PointRecord* point = result.find({{"parallelism", p1}});
    if (point == nullptr) {
      std::fprintf(stderr, "bench_gen1_sync: no point for parallelism=%s\n", p1);
      return 1;
    }
    // Mean over detected trials; the modeled lock time is deterministic
    // given the config, so the mean IS the per-config sync time.
    const double sync = bench::metric_mean(point->metrics, txrx::metric_names::kSyncTime);
    table.add_row(
        {p1, sim::Table::integer(static_cast<long long>(config.acq_parallelism_stage2)),
         sim::Table::num(sync * 1e6, 1) + " us", sync > 0.0 && sync < 70e-6 ? "yes" : "no",
         sim::Table::percent(
             bench::metric_mean(point->metrics, txrx::metric_names::kAcquired), 0),
         sim::Table::percent(
             bench::metric_mean(point->metrics, txrx::metric_names::kTimingCorrect), 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());
  std::printf("\nModel: sync = ceil(648/P1) x 8 frames (stage 1) + ceil(127/P2) x 160 frames\n"
              "(stage 2), frame = 324 ns. The paper's claim holds once the back end carries\n"
              "on the order of a hundred parallel correlators -- \"further parallelization\".\n");
  return 0;
}
