// E2 (Fig. 1 / Section 2): "Through further parallelization, packet
// synchronization is obtained in less than 70 us." Sweeps the correlator-
// bank parallelism and reports modeled sync time plus Monte-Carlo
// detection statistics of the two-stage acquisition.

#include <cstdio>

#include "bench_util.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE2;
  bench::print_header("E2 / Fig. 1", "gen-1 packet sync < 70 us via parallelization", seed);

  const int trials = bench::fast_mode() ? 6 : 20;
  sim::Table table({"P1 (stage-1)", "P2 (stage-2)", "sync time", "< 70 us", "P(detect)",
                    "P(timing ok)"});

  for (std::size_t p1 : {8u, 32u, 128u, 648u}) {
    txrx::Gen1Config config = sim::gen1_nominal();
    config.acq_parallelism_stage1 = p1;

    txrx::Gen1Link link(config, seed + p1);
    txrx::TrialOptions options;
    options.ebn0_db = 18.0;
    options.payload_bits = 8;
    options.genie_timing = false;

    int detected = 0, correct = 0;
    double sync_time = 0.0;
    for (int t = 0; t < trials; ++t) {
      const auto trial = link.run_acquisition(options);
      detected += trial.acq.acquired ? 1 : 0;
      correct += trial.timing_correct ? 1 : 0;
      sync_time = trial.acq.sync_time_s;  // deterministic given config
    }
    table.add_row({sim::Table::integer(static_cast<long long>(p1)),
                   sim::Table::integer(static_cast<long long>(config.acq_parallelism_stage2)),
                   sim::Table::num(sync_time * 1e6, 1) + " us",
                   sync_time < 70e-6 ? "yes" : "no",
                   sim::Table::percent(static_cast<double>(detected) / trials, 0),
                   sim::Table::percent(static_cast<double>(correct) / trials, 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nModel: sync = ceil(648/P1) x 8 frames (stage 1) + ceil(127/P2) x 160 frames\n"
              "(stage 2), frame = 324 ns. The paper's claim holds once the back end carries\n"
              "on the order of a hundred parallel correlators -- \"further parallelization\".\n");
  return 0;
}
