// E4 (Fig. 3 / Section 3): the 100 Mbps direct-conversion link across
// 802.15.3a channel models CM1-CM4, with the full back end (channel
// estimation, RAKE, Viterbi demodulator) against a matched-filter-only
// receiver. Reproduces the architecture's headline: the programmable back
// end is what makes 100 Mbps survive 20 ns delay spreads.
//
// Runs on the parallel sweep engine: the "gen2_cm_grid" registry scenario
// expands to the CM0-CM4 x Eb/N0 x {full, mf_only} plan, trials fan out
// over all cores with deterministic per-trial seeding, and the raw points
// land in bench/results/gen2_cm_grid.json for plotting.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE4;
  bench::print_header("E4 / Fig. 3", "gen-2 100 Mbps link, CM1-CM4, full back end vs MF",
                      seed);

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(40, 60000);

  engine::JsonSink json(engine::default_result_path("gen2_cm_grid", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::SweepResult result = sweep.run_named("gen2_cm_grid", {&json});

  // Pair each "full" point with its "mf_only" sibling by the remaining
  // axis tags, so the table tracks whatever grid the registry defines.
  sim::Table table({"channel", "Eb/N0", "BER full (RAKE+MLSE)", "BER MF-only", "gain"});
  for (const auto& record : result.records) {
    if (record.spec.tag("backend") != "full") continue;
    const std::string channel = record.spec.tag("channel");
    const std::string ebn0 = record.spec.tag("ebn0_db");
    const auto* p_mf =
        result.find({{"channel", channel}, {"ebn0_db", ebn0}, {"backend", "mf_only"}});
    if (p_mf == nullptr) continue;
    const auto& p_full = record;

    std::string gain = "--";
    if (p_full.ber.ber > 0.0 && p_mf->ber.ber > 0.0) {
      gain = sim::Table::num(p_mf->ber.ber / p_full.ber.ber, 1) + "x";
    } else if (p_full.ber.ber == 0.0 && p_mf->ber.ber > 0.0) {
      gain = "> " +
             sim::Table::num(p_mf->ber.ber * static_cast<double>(p_full.ber.bits), 0) +
             "x";
    }
    table.add_row({channel, ebn0 + " dB", sim::Table::sci(p_full.ber.ber),
                   sim::Table::sci(p_mf->ber.ber), gain});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());
  std::printf("\nShape check: on AWGN both receivers track theory; as the delay spread\n"
              "grows (CM1 -> CM4, up to ~25 ns vs the 10 ns bit) the MF-only receiver\n"
              "floors while RAKE+MLSE keeps the 100 Mbps link usable -- the reason the\n"
              "paper's back end exists.\n");
  return 0;
}
