// E4 (Fig. 3 / Section 3): the 100 Mbps direct-conversion link across
// 802.15.3a channel models CM1-CM4, with the full back end (channel
// estimation, RAKE, Viterbi demodulator) against a matched-filter-only
// receiver. Reproduces the architecture's headline: the programmable back
// end is what makes 100 Mbps survive 20 ns delay spreads.

#include <cstdio>

#include "bench_util.h"
#include "common/math_utils.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE4;
  bench::print_header("E4 / Fig. 3", "gen-2 100 Mbps link, CM1-CM4, full back end vs MF",
                      seed);

  const double ebn0_values[] = {8.0, 12.0, 16.0};

  sim::Table table({"channel", "Eb/N0", "BER full (RAKE+MLSE)", "BER MF-only", "gain"});
  for (int cm = 0; cm <= 4; ++cm) {
    for (double ebn0 : ebn0_values) {
      txrx::Gen2Config full = sim::gen2_fast();
      txrx::Gen2Config mf = full;
      mf.use_rake = false;
      mf.use_mlse = false;

      txrx::Gen2LinkOptions options;
      options.payload_bits = 300;
      options.cm = cm;
      options.ebn0_db = ebn0;

      const auto stop = bench::stop_rule(40, 60000);
      txrx::Gen2Link link_full(full, seed + static_cast<uint64_t>(cm));
      txrx::Gen2Link link_mf(mf, seed + static_cast<uint64_t>(cm));
      const sim::BerPoint p_full = bench::gen2_ber(link_full, options, stop);
      const sim::BerPoint p_mf = bench::gen2_ber(link_mf, options, stop);

      std::string gain = "--";
      if (p_full.ber > 0.0 && p_mf.ber > 0.0) {
        gain = sim::Table::num(p_mf.ber / p_full.ber, 1) + "x";
      } else if (p_full.ber == 0.0 && p_mf.ber > 0.0) {
        gain = "> " + sim::Table::num(p_mf.ber * static_cast<double>(p_full.bits), 0) + "x";
      }
      table.add_row({cm == 0 ? "AWGN" : "CM" + std::to_string(cm),
                     sim::Table::db(ebn0, 0), sim::Table::sci(p_full.ber),
                     sim::Table::sci(p_mf.ber), gain});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check: on AWGN both receivers track theory; as the delay spread\n"
              "grows (CM1 -> CM4, up to ~25 ns vs the 10 ns bit) the MF-only receiver\n"
              "floors while RAKE+MLSE keeps the 100 Mbps link usable -- the reason the\n"
              "paper's back end exists.\n");
  return 0;
}
