// E7 (Sections 1 and 3): "The energy spread caused by the multipath can be
// compensated using a RAKE receiver" -- programmable finger count in gen-2.
// Reports multipath energy capture vs finger count over CM realizations and
// the BER it buys.
//
// BER runs on the parallel sweep engine via the "gen2_rake_fingers"
// registry scenario (CM2 at 12 dB, axis "fingers"); raw points land in
// bench/results/gen2_rake_fingers.json. The receiver-side capture estimate
// comes from a few probe packets through the generation-agnostic
// txrx::Link interface.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "channel/saleh_valenzuela.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "equalizer/rake.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE7;
  bench::print_header("E7 / Sections 1+3", "RAKE finger count vs energy capture and BER",
                      seed);

  // --- Energy capture statistics straight from the channel model ----------
  std::printf("Average fraction of channel energy captured by the N strongest taps\n"
              "(%d realizations per model):\n\n",
              bench::fast_mode() ? 40 : 200);
  sim::Table capture({"model", "N=1", "N=2", "N=4", "N=8", "N=16", "rms spread"});
  const int realizations = bench::fast_mode() ? 40 : 200;
  for (int cm = 1; cm <= 4; ++cm) {
    const channel::SalehValenzuela sv(channel::cm_by_index(cm));
    Rng rng(seed + static_cast<uint64_t>(cm));
    double cap[5] = {0, 0, 0, 0, 0};
    double spread = 0.0;
    const std::size_t fingers[5] = {1, 2, 4, 8, 16};
    for (int r = 0; r < realizations; ++r) {
      const channel::Cir cir = sv.realize(rng);
      for (int k = 0; k < 5; ++k) cap[k] += cir.energy_capture(fingers[k]);
      spread += cir.rms_delay_spread();
    }
    capture.add_row({"CM" + std::to_string(cm), sim::Table::percent(cap[0] / realizations, 0),
                     sim::Table::percent(cap[1] / realizations, 0),
                     sim::Table::percent(cap[2] / realizations, 0),
                     sim::Table::percent(cap[3] / realizations, 0),
                     sim::Table::percent(cap[4] / realizations, 0),
                     sim::Table::num(spread / realizations * 1e9, 1) + " ns"});
  }
  std::printf("%s", capture.to_string().c_str());

  // --- BER vs finger count on CM2 (full receiver: RAKE + MLSE) -------------
  std::printf("\nBER at 100 Mbps, CM2, Eb/N0 = 12 dB (selective RAKE + MLSE):\n\n");

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(40, 60000);

  engine::JsonSink json(engine::default_result_path("gen2_rake_fingers", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::ScenarioSpec scenario =
      engine::ScenarioRegistry::global().make("gen2_rake_fingers");
  const engine::SweepResult result = sweep.run(scenario, {&json});

  sim::Table ber_table({"fingers", "BER", "RAKE capture (rx estimate)"});
  const int probe_packets = bench::fast_mode() ? 4 : 12;
  for (const auto& record : result.records) {
    // Receiver-side capture estimate: probe packets through the unified
    // Link interface (the rake_energy_capture metric is the RAKE's own
    // capture number).
    const auto link = txrx::make_link(record.spec.link, seed);
    Rng probe_rng(seed ^ record.index);
    double capture_acc = 0.0;
    for (int p = 0; p < probe_packets; ++p) {
      const txrx::TrialResult trial =
          link->run_packet(record.spec.link.options, probe_rng);
      capture_acc += trial.metric(txrx::metric_names::kRakeEnergyCapture).value_or(0.0);
    }
    ber_table.add_row({record.spec.tag("fingers"), sim::Table::sci(record.ber.ber),
                       sim::Table::percent(capture_acc / probe_packets, 0)});
  }
  std::printf("%s", ber_table.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());
  std::printf("\nShape check: capture (and BER) improve steeply up to ~4-8 fingers, then\n"
              "saturate -- the knee that makes a *programmable* finger count a power\n"
              "knob (E13) rather than a fixed design choice.\n");
  return 0;
}
