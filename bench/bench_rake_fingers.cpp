// E7 (Sections 1 and 3): "The energy spread caused by the multipath can be
// compensated using a RAKE receiver" -- programmable finger count in gen-2.
// Reports multipath energy capture vs finger count over CM realizations and
// the BER it buys.

#include <cstdio>

#include "bench_util.h"
#include "channel/saleh_valenzuela.h"
#include "equalizer/rake.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE7;
  bench::print_header("E7 / Sections 1+3", "RAKE finger count vs energy capture and BER",
                      seed);

  // --- Energy capture statistics straight from the channel model ----------
  std::printf("Average fraction of channel energy captured by the N strongest taps\n"
              "(%d realizations per model):\n\n",
              bench::fast_mode() ? 40 : 200);
  sim::Table capture({"model", "N=1", "N=2", "N=4", "N=8", "N=16", "rms spread"});
  const int realizations = bench::fast_mode() ? 40 : 200;
  for (int cm = 1; cm <= 4; ++cm) {
    const channel::SalehValenzuela sv(channel::cm_by_index(cm));
    Rng rng(seed + static_cast<uint64_t>(cm));
    double cap[5] = {0, 0, 0, 0, 0};
    double spread = 0.0;
    const std::size_t fingers[5] = {1, 2, 4, 8, 16};
    for (int r = 0; r < realizations; ++r) {
      const channel::Cir cir = sv.realize(rng);
      for (int k = 0; k < 5; ++k) cap[k] += cir.energy_capture(fingers[k]);
      spread += cir.rms_delay_spread();
    }
    capture.add_row({"CM" + std::to_string(cm), sim::Table::percent(cap[0] / realizations, 0),
                     sim::Table::percent(cap[1] / realizations, 0),
                     sim::Table::percent(cap[2] / realizations, 0),
                     sim::Table::percent(cap[3] / realizations, 0),
                     sim::Table::percent(cap[4] / realizations, 0),
                     sim::Table::num(spread / realizations * 1e9, 1) + " ns"});
  }
  std::printf("%s", capture.to_string().c_str());

  // --- BER vs finger count on CM2 (full receiver: RAKE + MLSE) -------------
  std::printf("\nBER at 100 Mbps, CM2, Eb/N0 = 12 dB (selective RAKE + MLSE):\n\n");
  sim::Table ber_table({"fingers", "BER", "RAKE capture (rx estimate)"});
  for (std::size_t fingers : {1u, 2u, 4u, 8u, 16u}) {
    txrx::Gen2Config config = sim::gen2_fast();
    config.rake.num_fingers = fingers;

    txrx::Gen2LinkOptions options;
    options.payload_bits = 300;
    options.cm = 2;
    options.ebn0_db = 12.0;

    txrx::Gen2Link link(config, seed);
    const auto stop = bench::stop_rule(40, 60000);
    double capture_acc = 0.0;
    std::size_t packets = 0;
    const sim::BerPoint point = sim::measure_ber(
        [&]() {
          const auto trial = link.run_packet(options);
          capture_acc += trial.rx.rake_energy_capture;
          ++packets;
          return sim::TrialOutcome{trial.bits, trial.errors};
        },
        stop);
    ber_table.add_row({sim::Table::integer(static_cast<long long>(fingers)),
                       sim::Table::sci(point.ber),
                       sim::Table::percent(capture_acc / static_cast<double>(packets), 0)});
  }
  std::printf("%s", ber_table.to_string().c_str());
  std::printf("\nShape check: capture (and BER) improve steeply up to ~4-8 fingers, then\n"
              "saturate -- the knee that makes a *programmable* finger count a power\n"
              "knob (E13) rather than a fixed design choice.\n");
  return 0;
}
