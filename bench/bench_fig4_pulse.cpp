// E1 (Fig. 4): "500 MHz pulse with carrier 5 GHz", +/-150 mV, ~580 ps/div.
// Regenerates the pulse at passband, measures the figure's observables and
// checks the FCC emission mask the system section leans on.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "dsp/power_spectrum.h"
#include "pulse/band_plan.h"
#include "pulse/pulse_shape.h"
#include "pulse/spectral_mask.h"
#include "rf/mixer.h"

int main() {
  using namespace uwb;
  bench::print_header("E1 / Fig. 4", "500 MHz pulse on a 5 GHz carrier", 1);

  const double rf_fs = 40e9;
  const pulse::BandPlan plan;
  const int channel = plan.nearest_channel(5e9);
  const double fc = plan.center_frequency(channel);

  sim::Table table({"pulse shape", "carrier", "-10dB BW", "99% BW", "dur(1%)",
                    "FCC margin", "compliant"});

  Rng rng(1);
  for (auto shape : {pulse::PulseShape::kRootRaisedCos, pulse::PulseShape::kGaussian}) {
    pulse::PulseSpec spec;
    spec.shape = shape;
    spec.bandwidth_hz = 500e6;
    spec.sample_rate_hz = rf_fs;
    const RealWaveform envelope = pulse::make_pulse(spec);

    CplxVec bb(envelope.size());
    for (std::size_t i = 0; i < envelope.size(); ++i) bb[i] = cplx(envelope[i], 0.0);
    const rf::Upconverter up(fc, rf_fs);
    RealWaveform burst = up.process(CplxWaveform(bb, rf_fs));

    // Random-polarity train -> continuous spectrum; amplitude set to the
    // largest FCC-compliant level, like a real transmitter would.
    RealWaveform train(1 << 16, rf_fs);
    for (std::size_t pos = 0; pos + burst.size() < train.size(); pos += 800) {
      RealWaveform copy = burst;
      copy.scale(rng.sign());
      train.add(copy, pos);
    }
    dsp::Psd psd = dsp::welch_psd(train, 8192);
    const auto mask = pulse::fcc_indoor_mask();
    const double scale = pulse::max_power_scale(psd, mask);
    for (auto& d : psd.density_w_per_hz) d *= scale;
    const pulse::MaskReport report = pulse::check_mask(psd, mask);

    table.add_row({shape == pulse::PulseShape::kRootRaisedCos ? "RRC (Fig. 4)" : "Gaussian",
                   sim::Table::num(fc / 1e9, 3) + " GHz",
                   sim::Table::num(dsp::bandwidth_at_level(psd, -10.0) / 1e6, 0) + " MHz",
                   sim::Table::num(dsp::occupied_bandwidth(psd) / 1e6, 0) + " MHz",
                   sim::Table::num(pulse::pulse_duration(envelope, 0.01) * 1e9, 2) + " ns",
                   sim::Table::db(report.worst_margin_db),
                   report.compliant ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper shows: ~4.6 ns visible burst, +/-150 mV, 500 MHz bandwidth at 5 GHz.\n"
              "Shape check: RRC -10 dB bandwidth within ~20%% of 500 MHz, FCC-compliant\n"
              "after power scaling, burst duration of a few ns.\n");
  return 0;
}
