// E1 (Fig. 4): "500 MHz pulse with carrier 5 GHz", +/-150 mV, ~580 ps/div.
// Regenerates the pulse at passband, measures the figure's observables and
// checks the FCC emission mask the system section leans on.
//
// The link-level half runs on the parallel sweep engine via the
// "gen2_pulse_shape" registry scenario (axis "pulse" = rrc | gaussian on
// AWGN); raw points land in bench/results/gen2_pulse_shape.json. The
// spectral table stays deterministic and engine-free.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "dsp/power_spectrum.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "pulse/band_plan.h"
#include "pulse/pulse_shape.h"
#include "pulse/spectral_mask.h"
#include "rf/mixer.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE1;
  bench::print_header("E1 / Fig. 4", "500 MHz pulse on a 5 GHz carrier", seed);

  const double rf_fs = 40e9;
  const pulse::BandPlan plan;
  const int channel = plan.nearest_channel(5e9);
  const double fc = plan.center_frequency(channel);

  sim::Table table({"pulse shape", "carrier", "-10dB BW", "99% BW", "dur(1%)",
                    "FCC margin", "compliant"});

  Rng rng(1);
  for (auto shape : {pulse::PulseShape::kRootRaisedCos, pulse::PulseShape::kGaussian}) {
    pulse::PulseSpec spec;
    spec.shape = shape;
    spec.bandwidth_hz = 500e6;
    spec.sample_rate_hz = rf_fs;
    const RealWaveform envelope = pulse::make_pulse(spec);

    CplxVec bb(envelope.size());
    for (std::size_t i = 0; i < envelope.size(); ++i) bb[i] = cplx(envelope[i], 0.0);
    const rf::Upconverter up(fc, rf_fs);
    RealWaveform burst = up.process(CplxWaveform(bb, rf_fs));

    // Random-polarity train -> continuous spectrum; amplitude set to the
    // largest FCC-compliant level, like a real transmitter would.
    RealWaveform train(1 << 16, rf_fs);
    for (std::size_t pos = 0; pos + burst.size() < train.size(); pos += 800) {
      RealWaveform copy = burst;
      copy.scale(rng.sign());
      train.add(copy, pos);
    }
    dsp::Psd psd = dsp::welch_psd(train, 8192);
    const auto mask = pulse::fcc_indoor_mask();
    const double scale = pulse::max_power_scale(psd, mask);
    for (auto& d : psd.density_w_per_hz) d *= scale;
    const pulse::MaskReport report = pulse::check_mask(psd, mask);

    table.add_row({shape == pulse::PulseShape::kRootRaisedCos ? "RRC (Fig. 4)" : "Gaussian",
                   sim::Table::num(fc / 1e9, 3) + " GHz",
                   sim::Table::num(dsp::bandwidth_at_level(psd, -10.0) / 1e6, 0) + " MHz",
                   sim::Table::num(dsp::occupied_bandwidth(psd) / 1e6, 0) + " MHz",
                   sim::Table::num(pulse::pulse_duration(envelope, 0.01) * 1e9, 2) + " ns",
                   sim::Table::db(report.worst_margin_db),
                   report.compliant ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());

  // --- Link-level BER: does the envelope choice cost anything? -------------
  std::printf("\nBER vs Eb/N0 on AWGN, RRC vs Gaussian envelope (same 500 MHz BW):\n\n");

  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(40, 60000);

  engine::JsonSink json(engine::default_result_path("gen2_pulse_shape", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::ScenarioSpec scenario =
      engine::ScenarioRegistry::global().make("gen2_pulse_shape");
  const engine::SweepResult result = sweep.run(scenario, {&json});

  sim::Table ber_table({"pulse", "Eb/N0", "BER", "CI95"});
  for (const auto& record : result.records) {
    ber_table.add_row({record.spec.tag("pulse"), record.spec.tag("ebn0_db") + " dB",
                       sim::Table::sci(record.ber.ber), sim::Table::sci(record.ber.ci95)});
  }
  std::printf("%s", ber_table.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());

  std::printf("\nPaper shows: ~4.6 ns visible burst, +/-150 mV, 500 MHz bandwidth at 5 GHz.\n"
              "Shape check: RRC -10 dB bandwidth within ~20%% of 500 MHz, FCC-compliant\n"
              "after power scaling, burst duration of a few ns; BER curves for the two\n"
              "envelopes sit within each other's confidence intervals on AWGN.\n");
  return 0;
}
