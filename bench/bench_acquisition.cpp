// E11 (Section 1): "a fast signal acquisition algorithm must be implemented
// to reduce the duration of the preamble to a value comparable with current
// wireless systems (~20 us)." Detection probability vs preamble length and
// Eb/N0: the preamble-duration budget behind the paper's system analysis.

#include <cstdio>

#include "bench_util.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE11;
  bench::print_header("E11 / Section 1", "preamble duration vs acquisition reliability",
                      seed);

  const int trials = bench::fast_mode() ? 8 : 25;
  sim::Table table({"PN reps", "preamble", "Eb/N0", "P(detect)", "P(timing ok)",
                    "sync time"});

  for (int reps : {2, 3}) {
    for (double ebn0 : {8.0, 10.0, 12.0, 14.0}) {
      txrx::Gen1Config config = sim::gen1_nominal();
      config.preamble_repetitions = reps;

      txrx::Gen1Link link(config, seed + static_cast<uint64_t>(reps * 100 + ebn0));
      txrx::TrialOptions options;
      options.ebn0_db = ebn0;
      options.payload_bits = 8;
      options.genie_timing = false;

      int detected = 0, correct = 0;
      double sync = 0.0;
      for (int t = 0; t < trials; ++t) {
        const auto trial = link.run_acquisition(options);
        detected += trial.acq.acquired ? 1 : 0;
        correct += trial.timing_correct ? 1 : 0;
        sync = trial.acq.sync_time_s;
      }
      const double preamble_us =
          static_cast<double>(reps) * 127.0 * 648.0 / config.adc_rate * 1e6;
      table.add_row({sim::Table::integer(reps), sim::Table::num(preamble_us, 1) + " us",
                     sim::Table::db(ebn0, 0),
                     sim::Table::percent(static_cast<double>(detected) / trials, 0),
                     sim::Table::percent(static_cast<double>(correct) / trials, 0),
                     sim::Table::num(sync * 1e6, 1) + " us"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check: detection transitions from failing (8 dB) to reliable\n"
              "(>= 12-14 dB) and a longer preamble buys the transition ~2 dB earlier --\n"
              "the preamble-duration / sensitivity trade behind Section 1's \"~20 us\"\n"
              "preamble budget. At gen-1's short-range operating margins the two-period\n"
              "(82 us) preamble acquires reliably with lock time under 70 us.\n");
  return 0;
}
