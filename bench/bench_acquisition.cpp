// E11 (Section 1): "a fast signal acquisition algorithm must be implemented
// to reduce the duration of the preamble to a value comparable with current
// wireless systems (~20 us)." Detection probability vs preamble length and
// Eb/N0: the preamble-duration budget behind the paper's system analysis.
//
// Runs on the parallel sweep engine via the "gen1_acquisition" registry
// scenario (acquisition-kind trials: the engine's metric pipeline carries
// P(detect) / P(timing ok) / mean sync time per point); raw points land in
// bench/results/gen1_acquisition.json.

#include <cstdio>

#include "bench_util.h"
#include "engine/sinks.h"
#include "engine/sweep_engine.h"
#include "sim/scenario.h"

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE11;
  bench::print_header("E11 / Section 1", "preamble duration vs acquisition reliability",
                      seed);

  // Fixed trial count per point (bits count acquisition attempts, so
  // max_bits is the per-point attempt budget); min_errors never trips.
  const std::size_t trials = bench::fast_mode() ? 8 : 25;
  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop.min_errors = trials + 1;
  sweep_config.stop.max_bits = trials;
  sweep_config.stop.max_trials = trials;

  engine::JsonSink json(engine::default_result_path("gen1_acquisition", "json"));
  engine::SweepEngine sweep(sweep_config);
  const engine::SweepResult result = sweep.run_named("gen1_acquisition", {&json});

  const txrx::Gen1Config config = sim::gen1_nominal();
  sim::Table table({"PN reps", "preamble", "Eb/N0", "P(detect)", "P(timing ok)",
                    "sync time"});
  for (const char* reps : {"2", "3"}) {
    for (const char* ebn0 : {"8", "10", "12", "14"}) {
      const engine::PointRecord* point =
          result.find({{"preamble_reps", reps}, {"ebn0_db", ebn0}});
      if (point == nullptr) {
        std::fprintf(stderr, "bench_acquisition: no point for preamble_reps=%s ebn0_db=%s\n",
                     reps, ebn0);
        return 1;
      }
      const double preamble_us =
          std::stod(reps) * 127.0 * 648.0 / config.adc_rate * 1e6;
      // Mean sync time over the *detected* trials (the sync_time_s metric
      // is emitted only when acquisition locks).
      const double sync = bench::metric_mean(point->metrics, txrx::metric_names::kSyncTime);
      table.add_row(
          {reps, sim::Table::num(preamble_us, 1) + " us", std::string(ebn0) + " dB",
           sim::Table::percent(
               bench::metric_mean(point->metrics, txrx::metric_names::kAcquired), 0),
           sim::Table::percent(
               bench::metric_mean(point->metrics, txrx::metric_names::kTimingCorrect), 0),
           sim::Table::num(sync * 1e6, 1) + " us"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(results: %s)\n", json.path().c_str());
  std::printf("\nShape check: detection transitions from failing (8 dB) to reliable\n"
              "(>= 12-14 dB) and a longer preamble buys the transition ~2 dB earlier --\n"
              "the preamble-duration / sensitivity trade behind Section 1's \"~20 us\"\n"
              "preamble budget. At gen-1's short-range operating margins the two-period\n"
              "(82 us) preamble acquires reliably with lock time under 70 us.\n");
  return 0;
}
