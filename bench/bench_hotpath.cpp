// Hot-path throughput bench: end-to-end packets/sec for gen-1 and gen-2
// link trials across CM0-CM4, measured twice from the same binary -- once
// with the direct O(N*M) convolution kernels (the pre-fast-path baseline,
// via dsp::set_fast_convolve_enabled(false)) and once with the overlap-save
// FFT dispatch enabled. Both numbers land in bench/results/BENCH_hotpath.json
// so the speedup trajectory accumulates PR over PR (CI runs this in fast
// mode and uploads the JSON as an artifact).
//
// Both passes replay identical trial streams (Rng forks of the same root),
// so the packets differ only in which convolution kernel executed.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dsp/fast_convolve.h"
#include "sim/scenario.h"
#include "txrx/link.h"

namespace {

using namespace uwb;

struct HotpathRow {
  std::string gen;
  std::string channel;
  std::size_t trials = 0;
  double baseline_pps = 0.0;
  double fast_pps = 0.0;

  [[nodiscard]] double speedup() const {
    return baseline_pps > 0.0 ? fast_pps / baseline_pps : 0.0;
  }
};

std::string channel_name(int cm) { return cm == 0 ? "AWGN" : "CM" + std::to_string(cm); }

/// Runs \p trials deterministic packets and returns packets/sec.
template <typename TrialFn>
double packets_per_sec(std::size_t trials, uint64_t seed, TrialFn&& run_trial) {
  const Rng root(seed);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < trials; ++i) {
    Rng trial_rng = root.fork(i);
    run_trial(trial_rng);
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count() > 0.0 ? static_cast<double>(trials) / elapsed.count() : 0.0;
}

HotpathRow measure_gen2(int cm, std::size_t trials, uint64_t seed) {
  txrx::Gen2Link link(sim::gen2_nominal(), seed);
  txrx::TrialOptions options;
  options.cm = cm;
  options.ebn0_db = 14.0;

  HotpathRow row{"gen2", channel_name(cm), trials, 0.0, 0.0};
  auto trial = [&](Rng& rng) { (void)link.run_packet(options, rng); };
  {
    const dsp::FastConvolveGuard direct(false);
    row.baseline_pps = packets_per_sec(trials, seed, trial);
  }
  {
    const dsp::FastConvolveGuard fast(true);
    row.fast_pps = packets_per_sec(trials, seed, trial);
  }
  return row;
}

HotpathRow measure_gen1(int cm, std::size_t trials, uint64_t seed) {
  txrx::Gen1Link link(sim::gen1_nominal(), seed);
  // Gen-1 defaults (short genie-timed packets): keeps this workload
  // comparable with the committed BENCH_hotpath.json trajectory.
  txrx::TrialOptions options = txrx::default_options(txrx::Generation::kGen1);
  options.cm = cm;
  options.ebn0_db = 14.0;

  HotpathRow row{"gen1", channel_name(cm), trials, 0.0, 0.0};
  auto trial = [&](Rng& rng) { (void)link.run_packet(options, rng); };
  {
    const dsp::FastConvolveGuard direct(false);
    row.baseline_pps = packets_per_sec(trials, seed, trial);
  }
  {
    const dsp::FastConvolveGuard fast(true);
    row.fast_pps = packets_per_sec(trials, seed, trial);
  }
  return row;
}

void write_json(const std::string& path, const std::vector<HotpathRow>& rows) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::binary);
  out << "{\n  \"bench\": \"hotpath\",\n";
  out << "  \"fast_mode\": " << (bench::fast_mode() ? "true" : "false") << ",\n";
  out << "  \"unit\": \"packets_per_sec\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const HotpathRow& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"gen\": \"%s\", \"channel\": \"%s\", \"trials\": %zu, "
                  "\"baseline_pps\": %.3f, \"fast_pps\": %.3f, \"speedup\": %.2f}%s\n",
                  r.gen.c_str(), r.channel.c_str(), r.trials, r.baseline_pps, r.fast_pps,
                  r.speedup(), i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const uint64_t seed = 0x407;
  bench::print_header("HOTPATH", "packets/sec, direct kernels vs FFT fast path", seed);

  const std::size_t gen2_trials = bench::fast_mode() ? 2 : 6;
  const std::size_t gen1_trials = bench::fast_mode() ? 1 : 3;

  std::vector<HotpathRow> rows;
  for (int cm = 0; cm <= 4; ++cm) {
    rows.push_back(measure_gen2(cm, gen2_trials, seed + static_cast<uint64_t>(cm)));
    std::printf("  gen2 %-5s  %8.2f -> %8.2f pkt/s  (%.1fx)\n", rows.back().channel.c_str(),
                rows.back().baseline_pps, rows.back().fast_pps, rows.back().speedup());
  }
  for (int cm = 0; cm <= 4; ++cm) {
    rows.push_back(measure_gen1(cm, gen1_trials, seed + 16 + static_cast<uint64_t>(cm)));
    std::printf("  gen1 %-5s  %8.2f -> %8.2f pkt/s  (%.1fx)\n", rows.back().channel.c_str(),
                rows.back().baseline_pps, rows.back().fast_pps, rows.back().speedup());
  }

  const std::string path = "bench/results/BENCH_hotpath.json";
  write_json(path, rows);
  std::printf("\n(results: %s)\n", path.c_str());

  // The acceptance gate this bench tracks: the gen-2 CM3 link trial.
  for (const auto& r : rows) {
    if (r.gen == "gen2" && r.channel == "CM3") {
      std::printf("gen-2 CM3 speedup: %.2fx (target >= 5x)\n", r.speedup());
    }
  }
  return 0;
}
