// Hot-path throughput bench: end-to-end packets/sec for gen-1 and gen-2
// link trials across CM0-CM4, measured twice from the same binary -- once
// with the direct O(N*M) convolution kernels (the pre-fast-path baseline,
// via dsp::set_fast_convolve_enabled(false)) and once with the overlap-save
// FFT dispatch enabled. Both numbers land in bench/results/BENCH_hotpath.json
// so the speedup trajectory accumulates PR over PR (CI runs this in fast
// mode and uploads the JSON as an artifact).
//
// Both passes replay identical trial streams (Rng forks of the same root),
// so the packets differ only in which convolution kernel executed.

#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dsp/fast_convolve.h"
#include "io/json.h"
#include "sim/scenario.h"
#include "txrx/link.h"

namespace {

using namespace uwb;

struct HotpathRow {
  std::string gen;
  std::string channel;
  std::size_t trials = 0;
  double baseline_pps = 0.0;
  double fast_pps = 0.0;

  [[nodiscard]] double speedup() const {
    return baseline_pps > 0.0 ? fast_pps / baseline_pps : 0.0;
  }
};

std::string channel_name(int cm) { return cm == 0 ? "AWGN" : "CM" + std::to_string(cm); }

/// Runs \p trials deterministic packets and returns packets/sec.
template <typename TrialFn>
double packets_per_sec(std::size_t trials, uint64_t seed, TrialFn&& run_trial) {
  const Rng root(seed);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < trials; ++i) {
    Rng trial_rng = root.fork(i);
    run_trial(trial_rng);
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count() > 0.0 ? static_cast<double>(trials) / elapsed.count() : 0.0;
}

HotpathRow measure_gen2(int cm, std::size_t trials, uint64_t seed) {
  txrx::Gen2Link link(sim::gen2_nominal(), seed);
  txrx::TrialOptions options;
  options.cm = cm;
  options.ebn0_db = 14.0;

  HotpathRow row{"gen2", channel_name(cm), trials, 0.0, 0.0};
  auto trial = [&](Rng& rng) { (void)link.run_packet(options, rng); };
  {
    const dsp::FastConvolveGuard direct(false);
    row.baseline_pps = packets_per_sec(trials, seed, trial);
  }
  {
    const dsp::FastConvolveGuard fast(true);
    row.fast_pps = packets_per_sec(trials, seed, trial);
  }
  return row;
}

HotpathRow measure_gen1(int cm, std::size_t trials, uint64_t seed) {
  txrx::Gen1Link link(sim::gen1_nominal(), seed);
  // Gen-1 defaults (short genie-timed packets): keeps this workload
  // comparable with the committed BENCH_hotpath.json trajectory.
  txrx::TrialOptions options = txrx::default_options(txrx::Generation::kGen1);
  options.cm = cm;
  options.ebn0_db = 14.0;

  HotpathRow row{"gen1", channel_name(cm), trials, 0.0, 0.0};
  auto trial = [&](Rng& rng) { (void)link.run_packet(options, rng); };
  {
    const dsp::FastConvolveGuard direct(false);
    row.baseline_pps = packets_per_sec(trials, seed, trial);
  }
  {
    const dsp::FastConvolveGuard fast(true);
    row.fast_pps = packets_per_sec(trials, seed, trial);
  }
  return row;
}

/// Short git SHA of the working tree, or "unknown" outside a checkout.
std::string git_sha() {
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {};
  std::string sha;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha.assign(buf);
  ::pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  for (const char c : sha) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return "unknown";
  }
  return sha.empty() ? "unknown" : sha;
}

std::string utc_date() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
  return buf;
}

io::JsonValue number_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return io::JsonValue::number_literal(buf);
}

io::JsonValue rows_to_json(const std::vector<HotpathRow>& rows) {
  io::JsonValue out = io::JsonValue::array();
  for (const HotpathRow& r : rows) {
    io::JsonValue row = io::JsonValue::object();
    row.set("gen", io::JsonValue::string(r.gen));
    row.set("channel", io::JsonValue::string(r.channel));
    row.set("trials", io::JsonValue::number(static_cast<uint64_t>(r.trials)));
    row.set("baseline_pps", number_fixed(r.baseline_pps, 3));
    row.set("fast_pps", number_fixed(r.fast_pps, 3));
    row.set("speedup", number_fixed(r.speedup(), 2));
    out.push_back(std::move(row));
  }
  return out;
}

/// Appends this run to the trajectory file instead of overwriting it: the
/// document holds a "runs" array with one entry per invocation, keyed by
/// git SHA and UTC date, so the per-PR history survives in the working
/// tree (not just in CI artifacts). A legacy single-run file (top-level
/// "rows") is migrated into the first entry; an unparseable file is
/// replaced rather than crashing the bench.
void append_json(const std::string& path, const std::vector<HotpathRow>& rows) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);

  io::JsonValue runs = io::JsonValue::array();
  if (std::ifstream in(path, std::ios::binary); in) {
    std::ostringstream text;
    text << in.rdbuf();
    try {
      const io::JsonValue old = io::parse_json(text.str());
      if (const io::JsonValue* prior = old.find("runs")) {
        for (const io::JsonValue& run : prior->items()) runs.push_back(run);
      } else if (const io::JsonValue* legacy = old.find("rows")) {
        io::JsonValue migrated = io::JsonValue::object();
        migrated.set("sha", io::JsonValue::string("pre-append"));
        migrated.set("date", io::JsonValue::string("unknown"));
        const io::JsonValue* fast = old.find("fast_mode");
        migrated.set("fast_mode", fast != nullptr ? *fast : io::JsonValue::boolean(false));
        migrated.set("rows", *legacy);
        runs.push_back(std::move(migrated));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  (warning: %s was not valid JSON, starting fresh: %s)\n",
                   path.c_str(), e.what());
    }
  }

  io::JsonValue run = io::JsonValue::object();
  run.set("sha", io::JsonValue::string(git_sha()));
  run.set("date", io::JsonValue::string(utc_date()));
  run.set("fast_mode", io::JsonValue::boolean(bench::fast_mode()));
  run.set("rows", rows_to_json(rows));
  runs.push_back(std::move(run));

  io::JsonValue doc = io::JsonValue::object();
  doc.set("bench", io::JsonValue::string("hotpath"));
  doc.set("unit", io::JsonValue::string("packets_per_sec"));
  doc.set("runs", std::move(runs));
  std::ofstream out(path, std::ios::binary);
  out << io::dump_json_pretty(doc) << "\n";
}

}  // namespace

int main() {
  const uint64_t seed = 0x407;
  bench::print_header("HOTPATH", "packets/sec, direct kernels vs FFT fast path", seed);

  const std::size_t gen2_trials = bench::fast_mode() ? 2 : 6;
  const std::size_t gen1_trials = bench::fast_mode() ? 1 : 3;

  std::vector<HotpathRow> rows;
  for (int cm = 0; cm <= 4; ++cm) {
    rows.push_back(measure_gen2(cm, gen2_trials, seed + static_cast<uint64_t>(cm)));
    std::printf("  gen2 %-5s  %8.2f -> %8.2f pkt/s  (%.1fx)\n", rows.back().channel.c_str(),
                rows.back().baseline_pps, rows.back().fast_pps, rows.back().speedup());
  }
  for (int cm = 0; cm <= 4; ++cm) {
    rows.push_back(measure_gen1(cm, gen1_trials, seed + 16 + static_cast<uint64_t>(cm)));
    std::printf("  gen1 %-5s  %8.2f -> %8.2f pkt/s  (%.1fx)\n", rows.back().channel.c_str(),
                rows.back().baseline_pps, rows.back().fast_pps, rows.back().speedup());
  }

  const std::string path = "bench/results/BENCH_hotpath.json";
  append_json(path, rows);
  std::printf("\n(results appended: %s)\n", path.c_str());

  // The acceptance gates this bench tracks: the gen-2 CM3 link trial, and
  // -- since the gen-1 hot-path overhaul -- a conservative speedup floor
  // on every gen-1 channel. The floors are far below the measured full-mode
  // speedups (>= 10x on CM1-CM4) so fast-mode single-trial noise cannot
  // trip them, but a regression that reverts the single-precision pipeline
  // fails the build instead of silently bending the trajectory.
  int failures = 0;
  for (const auto& r : rows) {
    if (r.gen == "gen2" && r.channel == "CM3") {
      std::printf("gen-2 CM3 speedup: %.2fx (target >= 5x)\n", r.speedup());
    }
    if (r.gen == "gen1") {
      const double floor = r.channel == "AWGN" ? 1.0 : 3.0;
      if (r.speedup() < floor) {
        std::fprintf(stderr, "FAIL: gen-1 %s speedup %.2fx below floor %.1fx\n",
                     r.channel.c_str(), r.speedup(), floor);
        ++failures;
      }
    }
  }
  return failures > 0 ? 1 : 0;
}
