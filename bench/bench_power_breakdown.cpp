// E10 (Section 1): "The large complexity required in the synchronization
// and demodulation of the UWB signal results in more than half of the
// system power being dissipated in the digital back end and the ADC."
// Block-level power breakdowns of both generations.

#include <cstdio>

#include "bench_util.h"
#include "sim/scenario.h"
#include "txrx/power_model.h"

namespace {

void print_breakdown(const char* title, const uwb::txrx::PowerBreakdown& bd) {
  using uwb::sim::Table;
  std::printf("%s (total %.1f mW):\n\n", title, bd.total_w() * 1e3);
  Table table({"block", "group", "power", "share"});
  for (const auto& block : bd.blocks) {
    table.add_row({block.name, block.group, Table::num(block.power_w * 1e3, 2) + " mW",
                   Table::percent(block.power_w / bd.total_w(), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n  RF %.1f mW | ADC %.1f mW | Digital %.1f mW\n", bd.group_w("RF") * 1e3,
              bd.group_w("ADC") * 1e3, bd.group_w("Digital") * 1e3);
  std::printf("  ADC + digital back end share: %.0f%%  (paper: \"more than half\")\n\n",
              100.0 * bd.adc_plus_digital_fraction());
}

}  // namespace

int main() {
  using namespace uwb;
  bench::print_header("E10 / Section 1", "power: ADC + digital back end dominate", 0);

  print_breakdown("Generation 1 (0.18 um, baseband, 2 GSps flash)",
                  txrx::gen1_power(sim::gen1_nominal()));
  print_breakdown("Generation 2 (direct conversion, 2x 5-bit SAR, RAKE+MLSE)",
                  txrx::gen2_power(sim::gen2_nominal()));

  // Sensitivity: the share holds across the configuration space.
  sim::Table sens({"gen-2 configuration", "total", "ADC+digital share"});
  for (auto [fingers, memory] : {std::pair{2, 1}, std::pair{8, 3}, std::pair{16, 6}}) {
    txrx::Gen2Config config = sim::gen2_nominal();
    config.rake.num_fingers = static_cast<std::size_t>(fingers);
    config.mlse.memory = memory;
    const auto bd = txrx::gen2_power(config);
    sens.add_row({"fingers=" + std::to_string(fingers) + ", memory=" + std::to_string(memory),
                  sim::Table::num(bd.total_w() * 1e3, 1) + " mW",
                  sim::Table::percent(bd.adc_plus_digital_fraction(), 0)});
  }
  std::printf("%s", sens.to_string().c_str());
  return 0;
}
