// E10 (Section 1): "The large complexity required in the synchronization
// and demodulation of the UWB signal results in more than half of the
// system power being dissipated in the digital back end and the ADC."
// Block-level power breakdowns of both generations, then the power/QoS
// trade measured on the sweep engine: each rung of the registry's
// "gen2_backend_ladder" scenario gets its modeled power next to its
// engine-measured BER on CM3, so the paper's reconfiguration argument
// (spend digital power only when the channel demands it) is one table.

#include <cstdio>

#include "bench_util.h"
#include "engine/scenario_registry.h"
#include "engine/sweep_engine.h"
#include "sim/scenario.h"
#include "txrx/power_model.h"

namespace {

void print_breakdown(const char* title, const uwb::txrx::PowerBreakdown& bd) {
  using uwb::sim::Table;
  std::printf("%s (total %.1f mW):\n\n", title, bd.total_w() * 1e3);
  Table table({"block", "group", "power", "share"});
  for (const auto& block : bd.blocks) {
    table.add_row({block.name, block.group, Table::num(block.power_w * 1e3, 2) + " mW",
                   Table::percent(block.power_w / bd.total_w(), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n  RF %.1f mW | ADC %.1f mW | Digital %.1f mW\n", bd.group_w("RF") * 1e3,
              bd.group_w("ADC") * 1e3, bd.group_w("Digital") * 1e3);
  std::printf("  ADC + digital back end share: %.0f%%  (paper: \"more than half\")\n\n",
              100.0 * bd.adc_plus_digital_fraction());
}

/// The backend-ladder scenario's config mutations, reapplied here to
/// price each rung with the power model (the registry owns the BER side;
/// "coded" prices as nominal -- the FEC burns no modeled hardware).
uwb::txrx::Gen2Config ladder_config(const std::string& rung) {
  uwb::txrx::Gen2Config config = uwb::sim::gen2_nominal();
  if (rung == "minimal") {
    config.rake.num_fingers = 2;
    config.use_mlse = false;
    config.mlse.memory = 1;
    config.sar.bits = 3;
  } else if (rung == "low") {
    config.rake.num_fingers = 4;
    config.use_mlse = false;
    config.mlse.memory = 1;
    config.sar.bits = 4;
  } else if (rung == "maximal") {
    config.rake.num_fingers = 16;
    config.use_mlse = true;
    config.mlse.memory = 5;
    config.sar.bits = 6;
  } else {  // nominal and coded
    config.rake.num_fingers = 8;
    config.use_mlse = true;
    config.mlse.memory = 3;
    config.sar.bits = 5;
  }
  return config;
}

}  // namespace

int main() {
  using namespace uwb;
  const uint64_t seed = 0xE10;
  bench::print_header("E10 / Section 1", "power: ADC + digital back end dominate", seed);

  print_breakdown("Generation 1 (0.18 um, baseband, 2 GSps flash)",
                  txrx::gen1_power(sim::gen1_nominal()));
  print_breakdown("Generation 2 (direct conversion, 2x 5-bit SAR, RAKE+MLSE)",
                  txrx::gen2_power(sim::gen2_nominal()));

  // Sensitivity: the share holds across the ladder, and the extra
  // milliwatts buy measurable BER on a dispersive channel.
  std::printf("Power vs QoS on CM3 at 14 dB (gen2_backend_ladder):\n\n");
  engine::SweepConfig sweep_config;
  sweep_config.seed = seed;
  sweep_config.workers = bench::worker_count();
  sweep_config.stop = bench::stop_rule(30, 60000);
  engine::SweepEngine engine(sweep_config);
  const engine::ScenarioSpec ladder =
      engine::ScenarioRegistry::global().make("gen2_backend_ladder");
  const engine::SweepResult result = engine.run(ladder, {});

  sim::Table sens({"backend", "total", "ADC+digital share", "BER"});
  for (const auto& record : result.records) {
    const std::string rung = record.spec.tag("backend");
    const auto bd = txrx::gen2_power(ladder_config(rung));
    sens.add_row({rung, sim::Table::num(bd.total_w() * 1e3, 1) + " mW",
                  sim::Table::percent(bd.adc_plus_digital_fraction(), 0),
                  sim::Table::sci(record.ber.ber)});
  }
  std::printf("%s", sens.to_string().c_str());
  return 0;
}
